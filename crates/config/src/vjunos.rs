//! Parser and renderer for the Junos-like hierarchical dialect.
//!
//! The second vendor dialect exists because the paper's argument hinges on
//! multi-vendor behaviour: 93% of surveyed operators run multi-vendor
//! networks, and a single reference model cannot express cross-vendor
//! interplay. Both dialects lower to the same [`DeviceConfig`] IR, but the
//! *router implementations* consuming them differ (see `mfv-vrouter`).
//!
//! Syntax: `section { statement; nested { ... } }` with `#` comments and
//! quoted strings, as in Junos.

use std::fmt;
use std::net::Ipv4Addr;

use mfv_types::{AsNum, Community, IfaceAddr, IfaceId, Prefix, RouterId};

use crate::ceos::{ParseError, ParseWarning, Parsed};
use crate::ir::*;

/// One node of the raw hierarchy: the statement words plus any nested block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stmt {
    pub words: Vec<String>,
    pub children: Vec<Stmt>,
    pub line: usize,
}

impl Stmt {
    fn word(&self, i: usize) -> &str {
        self.words.get(i).map(|s| s.as_str()).unwrap_or("")
    }

    /// Finds the first child whose first word is `kw`.
    fn child(&self, kw: &str) -> Option<&Stmt> {
        self.children.iter().find(|c| c.word(0) == kw)
    }

    fn children_named<'s>(&'s self, kw: &'s str) -> impl Iterator<Item = &'s Stmt> + 's {
        self.children.iter().filter(move |c| c.word(0) == kw)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tok<'a> {
    Word(&'a str),
    Open,
    Close,
    Semi,
}

fn tokenize(text: &str) -> Vec<(Tok<'_>, usize)> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let mut rest = line;
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            let lineno1 = lineno + 1;
            match rest.as_bytes()[0] {
                b'{' => {
                    out.push((Tok::Open, lineno1));
                    rest = &rest[1..];
                }
                b'}' => {
                    out.push((Tok::Close, lineno1));
                    rest = &rest[1..];
                }
                b';' => {
                    out.push((Tok::Semi, lineno1));
                    rest = &rest[1..];
                }
                b'"' => {
                    let end = rest[1..].find('"').map(|i| i + 1);
                    match end {
                        Some(end) => {
                            out.push((Tok::Word(&rest[1..end]), lineno1));
                            rest = &rest[end + 1..];
                        }
                        None => {
                            out.push((Tok::Word(&rest[1..]), lineno1));
                            rest = "";
                        }
                    }
                }
                _ => {
                    let end = rest
                        .find(|c: char| c.is_whitespace() || "{};\"".contains(c))
                        .unwrap_or(rest.len());
                    out.push((Tok::Word(&rest[..end]), lineno1));
                    rest = &rest[end..];
                }
            }
        }
    }
    out
}

/// Parses Junos-style text into a raw statement tree.
pub fn parse_tree(text: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = tokenize(text);
    let mut pos = 0;
    let stmts = parse_block(&toks, &mut pos)?;
    if pos != toks.len() {
        let line = toks.get(pos).map(|t| t.1).unwrap_or(0);
        return Err(ParseError {
            line,
            text: "}".into(),
            reason: "unbalanced closing brace".into(),
        });
    }
    Ok(stmts)
}

fn parse_block(toks: &[(Tok<'_>, usize)], pos: &mut usize) -> Result<Vec<Stmt>, ParseError> {
    let mut out = Vec::new();
    let mut words: Vec<String> = Vec::new();
    let mut first_line = 0;
    while *pos < toks.len() {
        let (tok, line) = toks[*pos];
        match tok {
            Tok::Word(w) => {
                if words.is_empty() {
                    first_line = line;
                }
                words.push(w.to_string());
                *pos += 1;
            }
            Tok::Semi => {
                *pos += 1;
                if !words.is_empty() {
                    out.push(Stmt {
                        words: std::mem::take(&mut words),
                        children: Vec::new(),
                        line: first_line,
                    });
                }
            }
            Tok::Open => {
                *pos += 1;
                let children = parse_block(toks, pos)?;
                if *pos >= toks.len() || toks[*pos].0 != Tok::Close {
                    return Err(ParseError {
                        line,
                        text: words.join(" "),
                        reason: "unterminated block".into(),
                    });
                }
                *pos += 1; // consume Close
                out.push(Stmt {
                    words: std::mem::take(&mut words),
                    children,
                    line: first_line,
                });
            }
            Tok::Close => {
                if !words.is_empty() {
                    return Err(ParseError {
                        line,
                        text: words.join(" "),
                        reason: "statement missing terminator before '}'".into(),
                    });
                }
                return Ok(out);
            }
        }
    }
    if !words.is_empty() {
        return Err(ParseError {
            line: first_line,
            text: words.join(" "),
            reason: "statement missing terminator at end of input".into(),
        });
    }
    Ok(out)
}

/// Strips a trailing `.N` unit suffix from a Junos interface reference
/// (`ge-0/0/0.0` → `ge-0/0/0`).
fn strip_unit(name: &str) -> &str {
    match name.rfind('.') {
        Some(i) if name[i + 1..].chars().all(|c| c.is_ascii_digit()) => &name[..i],
        _ => name,
    }
}

/// Parses a Junos-style configuration into the vendor-neutral IR.
pub fn parse(text: &str) -> Result<Parsed, ParseError> {
    let tree = parse_tree(text)?;
    let mut cfg = DeviceConfig::new("", Vendor::Vjunos);
    let mut warnings: Vec<ParseWarning> = Vec::new();
    let mut recognized = 0usize;
    let total = count_stmts(&tree);

    // Named community definitions (`policy-options community NAME members`)
    // are resolved while lowering policy-statements.
    let mut community_defs: Vec<(String, Vec<Community>)> = Vec::new();
    if let Some(po) = tree.iter().find(|s| s.word(0) == "policy-options") {
        for c in po.children_named("community") {
            // community NAME members a:b [a:b ...]
            if c.words.len() >= 4 && c.word(2) == "members" {
                let comms: Option<Vec<Community>> =
                    c.words[3..].iter().map(|w| parse_community(w)).collect();
                if let Some(comms) = comms {
                    community_defs.push((c.word(1).to_string(), comms));
                }
            }
        }
    }

    for section in &tree {
        match section.word(0) {
            "system" => {
                recognized += 1;
                recognized += lower_system(section, &mut cfg);
            }
            "interfaces" => {
                recognized += 1;
                recognized += lower_interfaces(section, &mut cfg, &mut warnings)?;
            }
            "protocols" => {
                recognized += 1;
                recognized += lower_protocols(section, &mut cfg, &mut warnings)?;
            }
            "policy-options" => {
                recognized += 1;
                recognized +=
                    lower_policy_options(section, &mut cfg, &community_defs, &mut warnings)?;
            }
            "routing-options" => {
                recognized += 1;
                recognized += lower_routing_options(section, &mut cfg, &mut warnings)?;
            }
            _ => {
                warnings.push(ParseWarning {
                    line: section.line,
                    text: section.words.join(" "),
                    reason: "unrecognized top-level section".into(),
                });
            }
        }
    }

    Ok(Parsed {
        config: cfg,
        warnings,
        recognized_lines: recognized,
        total_lines: total,
    })
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts.iter().map(|s| 1 + count_stmts(&s.children)).sum()
}

fn parse_community(s: &str) -> Option<Community> {
    let (a, v) = s.split_once(':')?;
    Some(Community::new(a.parse().ok()?, v.parse().ok()?))
}

fn lower_system(section: &Stmt, cfg: &mut DeviceConfig) -> usize {
    let mut n = 0;
    for st in &section.children {
        match st.word(0) {
            "host-name" => {
                cfg.hostname = st.word(1).to_string();
                n += 1;
            }
            "services" => {
                n += 1;
                for svc in &st.children {
                    match svc.word(0) {
                        "extension-service" => {
                            cfg.mgmt.apis.push("grpc".into());
                            n += 1 + count_stmts(&svc.children);
                        }
                        other => {
                            cfg.mgmt.apis.push(other.to_string());
                            n += 1 + count_stmts(&svc.children);
                        }
                    }
                }
            }
            "processes" => {
                n += 1;
                for p in &st.children {
                    cfg.mgmt.daemons.push(p.words.join(" "));
                    n += 1;
                }
            }
            "ntp" => {
                n += 1;
                for srv in st.children_named("server") {
                    if let Ok(ip) = srv.word(1).parse::<Ipv4Addr>() {
                        cfg.mgmt.ntp_servers.push(ip);
                    }
                    n += 1;
                }
            }
            "syslog" => {
                n += 1;
                for h in st.children_named("host") {
                    if let Ok(ip) = h.word(1).parse::<Ipv4Addr>() {
                        cfg.mgmt.logging_hosts.push(ip);
                    }
                    n += 1 + count_stmts(&h.children);
                }
            }
            _ => {
                // Opaque system statements (root-authentication, login, …)
                // are real-device features with no routing effect.
                n += 1 + count_stmts(&st.children);
            }
        }
    }
    n
}

fn lower_interfaces(
    section: &Stmt,
    cfg: &mut DeviceConfig,
    warnings: &mut Vec<ParseWarning>,
) -> Result<usize, ParseError> {
    let mut n = 0;
    for ifstmt in &section.children {
        let name = ifstmt.word(0).to_string();
        n += 1;
        let mut iface = InterfaceConfig::new(name.clone());
        // Junos interfaces with `family inet` are routed by construction;
        // there is no switchport/routed mode bit to get wrong. (Loopbacks
        // are implicitly routed in the IR, matching the builder's output.)
        iface.routed = !iface.name.is_loopback();
        for st in &ifstmt.children {
            match st.word(0) {
                "description" => {
                    iface.description = Some(st.words[1..].join(" "));
                    n += 1;
                }
                "disable" => {
                    iface.shutdown = true;
                    n += 1;
                }
                "unit" => {
                    n += 1;
                    for fam in &st.children {
                        match (fam.word(0), fam.word(1)) {
                            ("family", "inet") => {
                                n += 1;
                                for a in fam.children_named("address") {
                                    let addr: IfaceAddr =
                                        a.word(1).parse().map_err(|_| ParseError {
                                            line: a.line,
                                            text: a.words.join(" "),
                                            reason: "bad inet address".into(),
                                        })?;
                                    iface.addr = Some(addr);
                                    n += 1;
                                }
                            }
                            ("family", "iso") => {
                                // NET lives here on lo0; participation in
                                // IS-IS comes from `protocols isis`.
                                n += 1 + count_stmts(&fam.children);
                            }
                            ("family", "mpls") => {
                                iface.mpls = true;
                                n += 1;
                            }
                            _ => {
                                warnings.push(ParseWarning {
                                    line: fam.line,
                                    text: fam.words.join(" "),
                                    reason: "unrecognized family".into(),
                                });
                            }
                        }
                    }
                }
                _ => {
                    warnings.push(ParseWarning {
                        line: st.line,
                        text: st.words.join(" "),
                        reason: "unrecognized interface statement".into(),
                    });
                }
            }
        }
        cfg.interfaces.push(iface);
    }
    Ok(n)
}

fn lower_protocols(
    section: &Stmt,
    cfg: &mut DeviceConfig,
    warnings: &mut Vec<ParseWarning>,
) -> Result<usize, ParseError> {
    let mut n = 0;
    for proto in &section.children {
        match proto.word(0) {
            "isis" => {
                n += 1;
                let mut isis = IsisConfig::new("master", "");
                isis.wide_metrics = false;
                for st in &proto.children {
                    match st.word(0) {
                        "interface" => {
                            n += 1;
                            let ifname = strip_unit(st.word(1)).to_string();
                            let passive = st.child("passive").is_some();
                            let metric = st
                                .child("metric")
                                .and_then(|m| m.word(1).parse::<u32>().ok());
                            n += count_stmts(&st.children);
                            if let Some(iface) = cfg.interface_mut(&IfaceId::from(ifname.clone())) {
                                let mut ii = IfaceIsis::new("master");
                                ii.passive = passive;
                                if let Some(m) = metric {
                                    ii.metric = m;
                                }
                                iface.isis = Some(ii);
                            } else {
                                warnings.push(ParseWarning {
                                    line: st.line,
                                    text: st.words.join(" "),
                                    reason: "isis references unknown interface".into(),
                                });
                            }
                        }
                        "level" => {
                            n += 1;
                            if st.word(1) == "2" {
                                isis.level = IsisLevel::Level2;
                            } else if st.word(1) == "1" {
                                isis.level = IsisLevel::Level1;
                            }
                            if st.words.iter().any(|w| w == "wide-metrics-only") {
                                isis.wide_metrics = true;
                            }
                        }
                        "net" => {
                            // Convenience alias: NET normally comes from the
                            // lo0 `family iso address`; allow it inline too.
                            isis.net = st.word(1).to_string();
                            n += 1;
                        }
                        "export" => {
                            isis.redistribute_connected = true;
                            n += 1;
                        }
                        _ => {
                            warnings.push(ParseWarning {
                                line: st.line,
                                text: st.words.join(" "),
                                reason: "unrecognized isis statement".into(),
                            });
                        }
                    }
                }
                isis.af_ipv4 = true;
                cfg.isis = Some(isis);
            }
            "bgp" => {
                n += 1;
                let mut bgp = cfg.bgp.take().unwrap_or_else(|| BgpConfig::new(AsNum(0)));
                for group in proto.children_named("group") {
                    n += 1;
                    let external = group
                        .child("type")
                        .map(|t| t.word(1) == "external")
                        .unwrap_or(false);
                    let peer_as = group
                        .child("peer-as")
                        .and_then(|p| p.word(1).parse::<u32>().ok())
                        .map(AsNum);
                    let local_addr = group
                        .child("local-address")
                        .and_then(|p| p.word(1).parse::<Ipv4Addr>().ok());
                    let import = group.child("import").map(|s| s.word(1).to_string());
                    let export = group.child("export").map(|s| s.word(1).to_string());
                    let multihop = group.child("multihop").is_some();
                    let group_nhs = group.child("next-hop-self").is_some();
                    n += count_stmts(&group.children)
                        - group
                            .children_named("neighbor")
                            .map(|s| 1 + count_stmts(&s.children))
                            .sum::<usize>();
                    for nb in group.children_named("neighbor") {
                        n += 1 + count_stmts(&nb.children);
                        let peer: Ipv4Addr = nb.word(1).parse().map_err(|_| ParseError {
                            line: nb.line,
                            text: nb.words.join(" "),
                            reason: "bad neighbor address".into(),
                        })?;
                        // Per-neighbor overrides of group settings.
                        let nb_peer_as = nb
                            .child("peer-as")
                            .and_then(|p| p.word(1).parse::<u32>().ok())
                            .map(AsNum)
                            .or(peer_as);
                        let remote_as = if external {
                            match nb_peer_as {
                                Some(ras) => ras,
                                None => {
                                    warnings.push(ParseWarning {
                                        line: nb.line,
                                        text: nb.words.join(" "),
                                        reason: "external group without peer-as".into(),
                                    });
                                    continue;
                                }
                            }
                        } else {
                            // Internal: same AS as ours (filled later from
                            // routing-options if it parses after protocols).
                            nb_peer_as.unwrap_or(AsNum(0))
                        };
                        let mut ncfg = BgpNeighborConfig::new(peer, remote_as);
                        ncfg.route_map_in = import.clone();
                        ncfg.route_map_out = export.clone();
                        ncfg.ebgp_multihop = multihop;
                        if let Some(la) = local_addr {
                            // Resolve local-address to the owning interface.
                            let owner = cfg
                                .interfaces
                                .iter()
                                .find(|i| i.addr.map(|a| a.addr) == Some(la))
                                .map(|i| i.name.clone());
                            match owner {
                                Some(ifname) => ncfg.update_source = Some(ifname),
                                None => warnings.push(ParseWarning {
                                    line: group.line,
                                    text: format!("local-address {la}"),
                                    reason: "local-address matches no interface".into(),
                                }),
                            }
                        }
                        if !external {
                            // Junos iBGP advertises self as next hop via an
                            // export policy; our dialect spells the common
                            // arrangement as an explicit `next-hop-self`.
                            ncfg.next_hop_self = group_nhs
                                || group.child("export").is_some()
                                || nb.child("next-hop-self").is_some();
                        }
                        bgp.neighbors.push(ncfg);
                    }
                }
                cfg.bgp = Some(bgp);
            }
            "mpls" => {
                cfg.mpls.enabled = true;
                n += 1;
                for st in proto.children_named("interface") {
                    let ifname = strip_unit(st.word(1)).to_string();
                    if let Some(iface) = cfg.interface_mut(&IfaceId::from(ifname)) {
                        iface.mpls = true;
                    }
                    n += 1;
                }
                if proto.child("traffic-engineering").is_some() {
                    cfg.mpls.te_enabled = true;
                    n += 1;
                }
            }
            "rsvp" => {
                cfg.mpls.te_enabled = true;
                n += 1;
                let rsvp = cfg.mpls.rsvp.get_or_insert_with(RsvpConfig::default);
                for st in &proto.children {
                    match st.word(0) {
                        "hello-interval" => {
                            if let Ok(v) = st.word(1).parse() {
                                rsvp.hello_interval_ms = v;
                            }
                            n += 1;
                        }
                        "refresh-time" => {
                            if let Ok(v) = st.word(1).parse() {
                                rsvp.refresh_ms = v;
                            }
                            n += 1;
                        }
                        "interface" => {
                            n += 1;
                        }
                        _ => {
                            warnings.push(ParseWarning {
                                line: st.line,
                                text: st.words.join(" "),
                                reason: "unrecognized rsvp statement".into(),
                            });
                        }
                    }
                }
            }
            _ => {
                warnings.push(ParseWarning {
                    line: proto.line,
                    text: proto.words.join(" "),
                    reason: "unrecognized protocol".into(),
                });
            }
        }
    }
    Ok(n)
}

fn lower_policy_options(
    section: &Stmt,
    cfg: &mut DeviceConfig,
    community_defs: &[(String, Vec<Community>)],
    warnings: &mut Vec<ParseWarning>,
) -> Result<usize, ParseError> {
    let mut n = 0;
    for st in &section.children {
        match st.word(0) {
            "prefix-list" => {
                n += 1;
                let name = st.word(1).to_string();
                let pl = cfg.prefix_lists.entry(name).or_default();
                for (i, entry) in st.children.iter().enumerate() {
                    let prefix: Prefix = entry.word(0).parse().map_err(|_| ParseError {
                        line: entry.line,
                        text: entry.words.join(" "),
                        reason: "bad prefix-list entry".into(),
                    })?;
                    pl.entries.push(PrefixListEntry {
                        seq: (i as u32 + 1) * 10,
                        action: PolicyAction::Permit,
                        prefix,
                        ge: None,
                        le: Some(32),
                    });
                    n += 1;
                }
            }
            "community" => {
                // Handled in the prepass; count as recognized.
                n += 1;
            }
            "policy-statement" => {
                n += 1;
                let name = st.word(1).to_string();
                let rm = cfg.route_maps.entry(name).or_default();
                for (i, term) in st.children_named("term").enumerate() {
                    n += 1;
                    let seq = (i as u32 + 1) * 10;
                    let mut entry = RouteMapEntry {
                        seq,
                        action: PolicyAction::Permit,
                        matches: Vec::new(),
                        sets: Vec::new(),
                    };
                    if let Some(from) = term.child("from") {
                        n += 1;
                        for m in &from.children {
                            match m.word(0) {
                                "prefix-list" => {
                                    entry
                                        .matches
                                        .push(MatchClause::PrefixList(m.word(1).into()));
                                    n += 1;
                                }
                                "community" => {
                                    let cname = m.word(1);
                                    match community_defs
                                        .iter()
                                        .find(|(defname, _)| defname == cname)
                                    {
                                        Some((_, comms)) => {
                                            for c in comms {
                                                entry.matches.push(MatchClause::Community(*c));
                                            }
                                        }
                                        None => warnings.push(ParseWarning {
                                            line: m.line,
                                            text: m.words.join(" "),
                                            reason: "undefined community".into(),
                                        }),
                                    }
                                    n += 1;
                                }
                                _ => warnings.push(ParseWarning {
                                    line: m.line,
                                    text: m.words.join(" "),
                                    reason: "unrecognized from clause".into(),
                                }),
                            }
                        }
                    }
                    if let Some(then) = term.child("then") {
                        n += 1;
                        for a in &then.children {
                            match a.word(0) {
                                "accept" => {
                                    entry.action = PolicyAction::Permit;
                                    n += 1;
                                }
                                "reject" => {
                                    entry.action = PolicyAction::Deny;
                                    n += 1;
                                }
                                "local-preference" => {
                                    if let Ok(v) = a.word(1).parse() {
                                        entry.sets.push(SetClause::LocalPref(v));
                                    }
                                    n += 1;
                                }
                                "metric" => {
                                    if let Ok(v) = a.word(1).parse() {
                                        entry.sets.push(SetClause::Med(v));
                                    }
                                    n += 1;
                                }
                                "community" => {
                                    // community add NAME / community set NAME
                                    let mode = a.word(1);
                                    let cname = a.word(2);
                                    let comms = community_defs
                                        .iter()
                                        .find(|(defname, _)| defname == cname)
                                        .map(|(_, c)| c.clone());
                                    match comms {
                                        Some(comms) if mode == "add" => {
                                            entry.sets.push(SetClause::AddCommunities(comms))
                                        }
                                        Some(comms) => {
                                            entry.sets.push(SetClause::SetCommunities(comms))
                                        }
                                        None => warnings.push(ParseWarning {
                                            line: a.line,
                                            text: a.words.join(" "),
                                            reason: "undefined community".into(),
                                        }),
                                    }
                                    n += 1;
                                }
                                "as-path-prepend" => {
                                    let asns: Option<Vec<AsNum>> = a.words[1..]
                                        .iter()
                                        .map(|w| w.parse().ok().map(AsNum))
                                        .collect();
                                    if let Some(asns) = asns {
                                        entry.sets.push(SetClause::PrependAsPath(asns));
                                    }
                                    n += 1;
                                }
                                "next-hop" => {
                                    if let Ok(ip) = a.word(1).parse() {
                                        entry.sets.push(SetClause::NextHop(ip));
                                    }
                                    n += 1;
                                }
                                _ => warnings.push(ParseWarning {
                                    line: a.line,
                                    text: a.words.join(" "),
                                    reason: "unrecognized then clause".into(),
                                }),
                            }
                        }
                    }
                    rm.entries.push(entry);
                }
            }
            _ => warnings.push(ParseWarning {
                line: st.line,
                text: st.words.join(" "),
                reason: "unrecognized policy-options statement".into(),
            }),
        }
    }
    Ok(n)
}

fn lower_routing_options(
    section: &Stmt,
    cfg: &mut DeviceConfig,
    warnings: &mut Vec<ParseWarning>,
) -> Result<usize, ParseError> {
    let mut n = 0;
    for st in &section.children {
        match st.word(0) {
            "router-id" => {
                let ip: Ipv4Addr = st.word(1).parse().map_err(|_| ParseError {
                    line: st.line,
                    text: st.words.join(" "),
                    reason: "bad router-id".into(),
                })?;
                cfg.bgp
                    .get_or_insert_with(|| BgpConfig::new(AsNum(0)))
                    .router_id = Some(RouterId(ip));
                n += 1;
            }
            "autonomous-system" => {
                let asn: u32 = st.word(1).parse().map_err(|_| ParseError {
                    line: st.line,
                    text: st.words.join(" "),
                    reason: "bad autonomous-system".into(),
                })?;
                let bgp = cfg.bgp.get_or_insert_with(|| BgpConfig::new(AsNum(0)));
                bgp.asn = AsNum(asn);
                // Internal neighbors parsed before the AS was known.
                for nb in &mut bgp.neighbors {
                    if nb.remote_as == AsNum(0) {
                        nb.remote_as = AsNum(asn);
                    }
                }
                n += 1;
            }
            "static" => {
                n += 1;
                for r in st.children_named("route") {
                    let prefix: Prefix = r.word(1).parse().map_err(|_| ParseError {
                        line: r.line,
                        text: r.words.join(" "),
                        reason: "bad static route".into(),
                    })?;
                    let nh = r
                        .words
                        .iter()
                        .position(|w| w == "next-hop")
                        .and_then(|i| r.words.get(i + 1))
                        .and_then(|w| w.parse::<Ipv4Addr>().ok());
                    match nh {
                        Some(next_hop) => {
                            cfg.static_routes.push(StaticRoute {
                                prefix,
                                next_hop,
                                distance: None,
                            });
                            n += 1;
                        }
                        None => warnings.push(ParseWarning {
                            line: r.line,
                            text: r.words.join(" "),
                            reason: "static route without next-hop".into(),
                        }),
                    }
                }
            }
            "network" => {
                let p: Prefix = st.word(1).parse().map_err(|_| ParseError {
                    line: st.line,
                    text: st.words.join(" "),
                    reason: "bad network prefix".into(),
                })?;
                cfg.bgp
                    .get_or_insert_with(|| BgpConfig::new(AsNum(0)))
                    .networks
                    .push(p);
                n += 1;
            }
            "maximum-paths" | "multipath" => {
                cfg.bgp
                    .get_or_insert_with(|| BgpConfig::new(AsNum(0)))
                    .max_paths = st.word(1).parse().unwrap_or(4);
                n += 1;
            }
            _ => warnings.push(ParseWarning {
                line: st.line,
                text: st.words.join(" "),
                reason: "unrecognized routing-options statement".into(),
            }),
        }
    }
    Ok(n)
}

/// Renders a [`DeviceConfig`] in canonical Junos style.
pub fn render(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    let mut w = Indent::new(&mut out);

    w.open("system");
    w.line(&format!("host-name {};", cfg.hostname));
    if !cfg.mgmt.apis.is_empty() {
        w.open("services");
        for api in &cfg.mgmt.apis {
            if api == "grpc" {
                w.line("extension-service;");
            } else {
                w.line(&format!("{api};"));
            }
        }
        w.close();
    }
    if !cfg.mgmt.daemons.is_empty() {
        w.open("processes");
        for d in &cfg.mgmt.daemons {
            w.line(&format!("{d};"));
        }
        w.close();
    }
    if !cfg.mgmt.ntp_servers.is_empty() {
        w.open("ntp");
        for s in &cfg.mgmt.ntp_servers {
            w.line(&format!("server {s};"));
        }
        w.close();
    }
    if !cfg.mgmt.logging_hosts.is_empty() {
        w.open("syslog");
        for s in &cfg.mgmt.logging_hosts {
            w.line(&format!("host {s};"));
        }
        w.close();
    }
    w.close();

    w.open("interfaces");
    for iface in &cfg.interfaces {
        w.open(iface.name.as_str());
        if let Some(d) = &iface.description {
            w.line(&format!("description \"{d}\";"));
        }
        if iface.shutdown {
            w.line("disable;");
        }
        w.open("unit 0");
        if let Some(a) = &iface.addr {
            w.open("family inet");
            w.line(&format!("address {a};"));
            w.close();
        }
        if iface.isis.is_some() || iface.name.is_loopback() {
            w.line("family iso;");
        }
        if iface.mpls {
            w.line("family mpls;");
        }
        w.close();
        w.close();
    }
    w.close();

    let has_protocols = cfg.isis.is_some()
        || cfg
            .bgp
            .as_ref()
            .map(|b| !b.neighbors.is_empty())
            .unwrap_or(false)
        || cfg.mpls.enabled;
    if has_protocols {
        w.open("protocols");
        if let Some(isis) = &cfg.isis {
            w.open("isis");
            if !isis.net.is_empty() {
                w.line(&format!("net {};", isis.net));
            }
            let level = match isis.level {
                IsisLevel::Level1 => "1",
                IsisLevel::Level2 | IsisLevel::Level1And2 => "2",
            };
            if isis.wide_metrics {
                w.line(&format!("level {level} wide-metrics-only;"));
            } else {
                w.line(&format!("level {level};"));
            }
            for iface in &cfg.interfaces {
                if let Some(ii) = &iface.isis {
                    if ii.passive || ii.metric != 10 {
                        w.open(&format!("interface {}.0", iface.name));
                        if ii.passive {
                            w.line("passive;");
                        }
                        if ii.metric != 10 {
                            w.line(&format!("metric {};", ii.metric));
                        }
                        w.close();
                    } else {
                        w.line(&format!("interface {}.0;", iface.name));
                    }
                }
            }
            w.close();
        }
        if let Some(bgp) = &cfg.bgp {
            if !bgp.neighbors.is_empty() {
                w.open("bgp");
                let (ext, int): (Vec<_>, Vec<_>) =
                    bgp.neighbors.iter().partition(|n| n.remote_as != bgp.asn);
                for (gi, n) in ext.iter().enumerate() {
                    w.open(&format!("group ebgp-{gi}"));
                    w.line("type external;");
                    w.line(&format!("peer-as {};", n.remote_as));
                    if n.ebgp_multihop {
                        w.line("multihop;");
                    }
                    if let Some(rm) = &n.route_map_in {
                        w.line(&format!("import {rm};"));
                    }
                    if let Some(rm) = &n.route_map_out {
                        w.line(&format!("export {rm};"));
                    }
                    w.line(&format!("neighbor {};", n.peer));
                    w.close();
                }
                if !int.is_empty() {
                    w.open("group ibgp");
                    w.line("type internal;");
                    if int.iter().all(|n| n.next_hop_self) {
                        w.line("next-hop-self;");
                    }
                    if let Some(src) = int[0].update_source.as_ref() {
                        if let Some(ifc) = cfg.interfaces.iter().find(|i| &i.name == src) {
                            if let Some(a) = ifc.addr {
                                w.line(&format!("local-address {};", a.addr));
                            }
                        }
                    }
                    for n in &int {
                        w.line(&format!("neighbor {};", n.peer));
                    }
                    w.close();
                }
                w.close();
            }
        }
        if cfg.mpls.enabled {
            w.open("mpls");
            for iface in &cfg.interfaces {
                if iface.mpls {
                    w.line(&format!("interface {}.0;", iface.name));
                }
            }
            w.close();
        }
        if cfg.mpls.te_enabled {
            w.open("rsvp");
            if let Some(rsvp) = &cfg.mpls.rsvp {
                w.line(&format!("hello-interval {};", rsvp.hello_interval_ms));
                w.line(&format!("refresh-time {};", rsvp.refresh_ms));
            }
            for iface in &cfg.interfaces {
                if iface.mpls {
                    w.line(&format!("interface {}.0;", iface.name));
                }
            }
            w.close();
        }
        w.close();
    }

    if !cfg.prefix_lists.is_empty() || !cfg.route_maps.is_empty() {
        w.open("policy-options");
        for (name, pl) in &cfg.prefix_lists {
            w.open(&format!("prefix-list {name}"));
            for e in &pl.entries {
                if e.action == PolicyAction::Permit {
                    w.line(&format!("{};", e.prefix));
                }
            }
            w.close();
        }
        for (name, rm) in &cfg.route_maps {
            w.open(&format!("policy-statement {name}"));
            for e in &rm.entries {
                w.open(&format!("term t{}", e.seq));
                if !e.matches.is_empty() {
                    w.open("from");
                    for m in &e.matches {
                        if let MatchClause::PrefixList(pl) = m {
                            w.line(&format!("prefix-list {pl};"));
                        }
                    }
                    w.close();
                }
                w.open("then");
                for s in &e.sets {
                    match s {
                        SetClause::LocalPref(v) => w.line(&format!("local-preference {v};")),
                        SetClause::Med(v) => w.line(&format!("metric {v};")),
                        SetClause::NextHop(ip) => w.line(&format!("next-hop {ip};")),
                        _ => {}
                    }
                }
                match e.action {
                    PolicyAction::Permit => w.line("accept;"),
                    PolicyAction::Deny => w.line("reject;"),
                }
                w.close();
                w.close();
            }
            w.close();
        }
        w.close();
    }

    w.open("routing-options");
    if let Some(bgp) = &cfg.bgp {
        if let Some(rid) = bgp.router_id {
            w.line(&format!("router-id {rid};"));
        }
        if bgp.asn != AsNum(0) {
            w.line(&format!("autonomous-system {};", bgp.asn));
        }
        if bgp.max_paths > 1 {
            w.line(&format!("maximum-paths {};", bgp.max_paths));
        }
        // Dialect extension: our vjunos flavour originates BGP prefixes via
        // `network` under routing-options (real Junos uses export policy;
        // the shorthand keeps cross-vendor specs symmetrical).
        for p in &bgp.networks {
            w.line(&format!("network {p};"));
        }
    }
    if !cfg.static_routes.is_empty() {
        w.open("static");
        for r in &cfg.static_routes {
            w.line(&format!("route {} next-hop {};", r.prefix, r.next_hop));
        }
        w.close();
    }
    w.close();

    out
}

struct Indent<'a> {
    out: &'a mut String,
    depth: usize,
}

impl<'a> Indent<'a> {
    fn new(out: &'a mut String) -> Indent<'a> {
        Indent { out, depth: 0 }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.depth {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn open(&mut self, s: &str) {
        self.line(&format!("{s} {{"));
        self.depth += 1;
    }

    fn close(&mut self) {
        self.depth -= 1;
        self.line("}");
    }
}

impl fmt::Debug for Indent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Indent(depth={})", self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
system {
    host-name r4;
    services {
        ssh;
        netconf;
        extension-service {
            request-response;
        }
    }
    processes {
        power-manager;
        led-control;
    }
    ntp {
        server 192.0.2.123;
    }
}
interfaces {
    ge-0/0/0 {
        description "to r1";
        unit 0 {
            family inet {
                address 100.64.0.0/31;
            }
            family iso;
            family mpls;
        }
    }
    lo0 {
        unit 0 {
            family inet {
                address 2.2.2.4/32;
            }
            family iso;
        }
    }
}
protocols {
    isis {
        net 49.0001.0000.0000.0004.00;
        level 2 wide-metrics-only;
        interface ge-0/0/0.0;
        interface lo0.0 {
            passive;
        }
    }
    bgp {
        group ebgp-0 {
            type external;
            peer-as 65001;
            import IMPORT;
            neighbor 100.64.0.1;
        }
        group ibgp {
            type internal;
            local-address 2.2.2.4;
            neighbor 2.2.2.5;
        }
    }
    mpls {
        interface ge-0/0/0.0;
    }
    rsvp {
        hello-interval 5000;
        refresh-time 20000;
        interface ge-0/0/0.0;
    }
}
policy-options {
    prefix-list CUSTOMER {
        203.0.113.0/24;
    }
    community CUST members 65002:100;
    policy-statement IMPORT {
        term t10 {
            from {
                prefix-list CUSTOMER;
            }
            then {
                local-preference 200;
                community add CUST;
                accept;
            }
        }
        term t20 {
            then {
                reject;
            }
        }
    }
}
routing-options {
    router-id 2.2.2.4;
    autonomous-system 65002;
    static {
        route 198.51.100.0/24 next-hop 100.64.0.1;
    }
}
"#;

    #[test]
    fn tree_parser_handles_nesting() {
        let tree = parse_tree(SAMPLE).unwrap();
        assert_eq!(tree.len(), 5);
        let system = &tree[0];
        assert_eq!(system.word(0), "system");
        assert_eq!(system.child("host-name").unwrap().word(1), "r4");
    }

    #[test]
    fn tree_parser_rejects_unbalanced() {
        assert!(parse_tree("system {").is_err());
        assert!(parse_tree("a b c }").is_err());
        assert!(parse_tree("dangling words").is_err());
    }

    #[test]
    fn quoted_strings_and_comments() {
        let tree = parse_tree("a { description \"two words\"; } # trailing\n").unwrap();
        let d = tree[0].child("description").unwrap();
        assert_eq!(d.word(1), "two words");
    }

    #[test]
    fn lowering_produces_expected_ir() {
        let parsed = parse(SAMPLE).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        let cfg = parsed.config;
        assert_eq!(cfg.hostname, "r4");
        assert_eq!(cfg.vendor, Vendor::Vjunos);
        assert!(cfg.mgmt.apis.contains(&"ssh".to_string()));
        assert!(cfg.mgmt.apis.contains(&"grpc".to_string()));
        assert_eq!(cfg.mgmt.daemons.len(), 2);

        let ge = cfg.interface(&IfaceId::from("ge-0/0/0")).unwrap();
        assert!(ge.routed && ge.is_l3());
        assert_eq!(ge.addr.unwrap().to_string(), "100.64.0.0/31");
        assert!(ge.mpls);
        assert_eq!(ge.isis.as_ref().unwrap().instance, "master");
        assert!(!ge.isis.as_ref().unwrap().passive);

        let lo = cfg.interface(&IfaceId::from("lo0")).unwrap();
        assert!(lo.isis.as_ref().unwrap().passive);

        let isis = cfg.isis.as_ref().unwrap();
        assert_eq!(isis.net, "49.0001.0000.0000.0004.00");
        assert!(isis.wide_metrics);

        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, AsNum(65002));
        assert_eq!(bgp.neighbors.len(), 2);
        let ebgp = bgp.neighbor("100.64.0.1".parse().unwrap()).unwrap();
        assert_eq!(ebgp.remote_as, AsNum(65001));
        assert_eq!(ebgp.route_map_in.as_deref(), Some("IMPORT"));
        let ibgp = bgp.neighbor("2.2.2.5".parse().unwrap()).unwrap();
        assert_eq!(ibgp.remote_as, AsNum(65002), "internal inherits our AS");
        assert_eq!(ibgp.update_source, Some(IfaceId::from("lo0")));

        assert!(cfg.mpls.enabled && cfg.mpls.te_enabled);
        assert_eq!(cfg.mpls.rsvp.unwrap().hello_interval_ms, 5000);

        let rm = &cfg.route_maps["IMPORT"];
        assert_eq!(rm.entries.len(), 2);
        assert_eq!(rm.entries[0].action, PolicyAction::Permit);
        assert_eq!(rm.entries[1].action, PolicyAction::Deny);
        assert!(matches!(
            rm.entries[0].sets[1],
            SetClause::AddCommunities(ref cs) if cs == &vec![Community::new(65002, 100)]
        ));

        assert_eq!(cfg.static_routes.len(), 1);
    }

    #[test]
    fn render_parse_roundtrip() {
        let parsed = parse(SAMPLE).unwrap();
        let text = render(&parsed.config);
        let back = parse(&text).unwrap();
        assert!(
            back.warnings.is_empty(),
            "{:?}\n---\n{}",
            back.warnings,
            text
        );
        // Compare the semantically-relevant parts (mgmt rendering collapses
        // some service details).
        assert_eq!(back.config.hostname, parsed.config.hostname);
        assert_eq!(back.config.interfaces, parsed.config.interfaces);
        assert_eq!(back.config.isis, parsed.config.isis);
        assert_eq!(back.config.static_routes, parsed.config.static_routes);
        assert_eq!(back.config.mpls, parsed.config.mpls);
        let a = back.config.bgp.unwrap();
        let b = parsed.config.bgp.unwrap();
        assert_eq!(a.asn, b.asn);
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
            assert_eq!(x.peer, y.peer);
            assert_eq!(x.remote_as, y.remote_as);
        }
    }

    #[test]
    fn external_group_without_peer_as_warns() {
        let text = "protocols { bgp { group broken { type external; neighbor 10.0.0.1; } } }";
        let parsed = parse(text).unwrap();
        assert!(parsed.warnings.iter().any(|w| w.reason.contains("peer-as")));
        assert!(parsed.config.bgp.unwrap().neighbors.is_empty());
    }

    #[test]
    fn strip_unit_variants() {
        assert_eq!(strip_unit("ge-0/0/0.0"), "ge-0/0/0");
        assert_eq!(strip_unit("lo0.0"), "lo0");
        assert_eq!(strip_unit("ge-0/0/0"), "ge-0/0/0");
        assert_eq!(strip_unit("weird.name.12"), "weird.name");
    }
}
