//! Property tests: generated router specs must render to vendor config text
//! that parses back to the identical IR (the render→parse fixpoint), in both
//! dialects, and the vendor parsers must never panic on line-mangled input.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use mfv_config::{ceos, vjunos, IfaceSpec, RouterSpec, Vendor};
use mfv_types::AsNum;

#[derive(Debug, Clone)]
struct SpecShape {
    asn: u32,
    loopback_octet: u8,
    ifaces: Vec<(u8, bool, u32)>, // (addr octet, isis, metric)
    ebgp: Vec<(u8, u32)>,
    ibgp: Vec<u8>,
    networks: Vec<u8>,
    redistribute: bool,
    production: bool,
}

fn arb_shape() -> impl Strategy<Value = SpecShape> {
    (
        64512u32..65535,
        1u8..250,
        proptest::collection::vec((1u8..120, any::<bool>(), 1u32..1000), 1..5),
        proptest::collection::vec((1u8..120, 64512u32..65534), 0..3),
        proptest::collection::vec(1u8..250, 0..3),
        proptest::collection::vec(1u8..250, 0..3),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(asn, loopback_octet, ifaces, ebgp, ibgp, networks, redistribute, production)| {
                SpecShape {
                    asn,
                    loopback_octet,
                    ifaces,
                    ebgp,
                    ibgp,
                    networks,
                    redistribute,
                    production,
                }
            },
        )
}

fn build_spec(shape: &SpecShape, vendor: Vendor) -> RouterSpec {
    let mut spec = RouterSpec::new(
        "r1",
        AsNum(shape.asn),
        Ipv4Addr::new(2, 2, 2, shape.loopback_octet),
    )
    .vendor(vendor);
    for (i, (octet, isis, metric)) in shape.ifaces.iter().enumerate() {
        let name = match vendor {
            Vendor::Ceos => format!("Ethernet{}", i + 1),
            Vendor::Vjunos => format!("ge-0/0/{i}"),
        };
        let addr = format!("10.{octet}.{i}.1/31").parse().unwrap();
        let mut ifc = IfaceSpec::new(name, addr);
        if *isis {
            ifc = ifc.with_metric(*metric);
        }
        spec = spec.iface(ifc);
    }
    for (i, (octet, ras)) in shape.ebgp.iter().enumerate() {
        spec = spec.ebgp(Ipv4Addr::new(10, *octet, i as u8, 0), AsNum(*ras));
    }
    for octet in &shape.ibgp {
        spec = spec.ibgp(Ipv4Addr::new(2, 2, 3, *octet));
    }
    for octet in &shape.networks {
        spec = spec.network(format!("203.0.{octet}.0/24").parse().unwrap());
    }
    if shape.redistribute {
        spec = spec.redistribute_connected();
    }
    if shape.production && vendor == Vendor::Ceos {
        spec = spec.production();
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ceos_render_parse_fixpoint(shape in arb_shape()) {
        let spec = build_spec(&shape, Vendor::Ceos);
        let cfg = spec.build();
        let text = ceos::render(&cfg);
        let parsed = ceos::parse(&text).unwrap();
        prop_assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        prop_assert_eq!(&parsed.config, &cfg);
        // And rendering the parse is a fixpoint.
        let text2 = ceos::render(&parsed.config);
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn vjunos_render_parse_preserves_routing_payload(shape in arb_shape()) {
        let spec = build_spec(&shape, Vendor::Vjunos);
        let cfg = spec.build();
        let text = vjunos::render(&cfg);
        let parsed = vjunos::parse(&text).unwrap();
        prop_assert!(parsed.warnings.is_empty(), "{:?}\n{}", parsed.warnings, text);
        let back = parsed.config;
        prop_assert_eq!(&back.hostname, &cfg.hostname);
        prop_assert_eq!(&back.interfaces, &cfg.interfaces);
        prop_assert_eq!(&back.isis, &cfg.isis);
        prop_assert_eq!(&back.static_routes, &cfg.static_routes);
        match (&back.bgp, &cfg.bgp) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.asn, b.asn);
                prop_assert_eq!(a.networks.clone(), b.networks.clone());
                prop_assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                    prop_assert_eq!(x.peer, y.peer);
                    prop_assert_eq!(x.remote_as, y.remote_as);
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "bgp presence mismatch {:?}", other),
        }
    }

    #[test]
    fn ceos_parser_never_panics_on_line_shuffles(
        shape in arb_shape(),
        drop_mask in proptest::collection::vec(any::<bool>(), 0..120),
    ) {
        // Drop arbitrary lines from a valid config; the parser may error or
        // warn, but must not panic and must not mislabel surviving values.
        let spec = build_spec(&shape, Vendor::Ceos);
        let text = spec.render();
        let kept: Vec<&str> = text
            .lines()
            .enumerate()
            .filter(|(i, _)| !drop_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, l)| l)
            .collect();
        let _ = ceos::parse(&kept.join("\n"));
    }

    #[test]
    fn vjunos_tree_parser_never_panics(
        text in proptest::collection::vec(
            prop_oneof![
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                "[a-z0-9./-]{1,12}",
                Just("\"q\"".to_string()),
            ],
            0..60,
        )
    ) {
        let _ = vjunos::parse_tree(&text.join(" "));
    }
}
