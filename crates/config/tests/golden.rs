//! Golden-file tests for the two vendor emitters. The emitted text is an
//! *interface*: the vrouter boots from it, E6's CLI shows it, and the
//! feature-coverage experiment (E2) classifies its lines — so a formatting
//! drift is a behavior change and must show up in review as a fixture
//! diff, not as a silent downstream surprise.
//!
//! Regenerate after an intentional emitter change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p mfv-config --test golden
//! ```

use std::path::PathBuf;

use mfv_config::{
    add_production_boilerplate, parse, IfaceSpec, MatchClause, PolicyAction, PrefixList,
    PrefixListEntry, RouteMap, RouteMapEntry, RouterSpec, SetClause, Vendor,
};
use mfv_types::AsNum;

/// A config that exercises every emitter feature at once: IS-IS + eBGP +
/// iBGP, in/out policy, prefix-lists, policed and unfiltered
/// redistribution, network statements, and the production management
/// boilerplate.
fn representative(vendor: Vendor) -> RouterSpec {
    let import = RouteMap {
        entries: vec![
            RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![MatchClause::PrefixList("CUSTOMER-IN".into())],
                sets: vec![SetClause::LocalPref(200)],
            },
            RouteMapEntry {
                seq: 20,
                action: PolicyAction::Deny,
                matches: vec![],
                sets: vec![],
            },
        ],
    };
    let export = RouteMap {
        entries: vec![RouteMapEntry {
            seq: 10,
            action: PolicyAction::Permit,
            matches: vec![],
            sets: vec![SetClause::Med(50)],
        }],
    };
    let customers = PrefixList {
        entries: vec![
            PrefixListEntry {
                seq: 5,
                action: PolicyAction::Permit,
                prefix: "198.51.100.0/24".parse().unwrap(),
                le: Some(28),
                ge: None,
            },
            PrefixListEntry {
                seq: 10,
                action: PolicyAction::Deny,
                prefix: "0.0.0.0/0".parse().unwrap(),
                le: Some(32),
                ge: None,
            },
        ],
    };
    RouterSpec::new("edge1", AsNum(65010), "2.2.2.10".parse().unwrap())
        .vendor(vendor)
        .iface(
            IfaceSpec::new("Ethernet1", "10.0.0.0/31".parse().unwrap())
                .with_isis()
                .with_metric(20)
                .described("core uplink"),
        )
        .iface(IfaceSpec::new("Ethernet2", "192.0.2.1/30".parse().unwrap()).described("customer"))
        .ebgp("192.0.2.2".parse().unwrap(), AsNum(65020))
        .ibgp("2.2.2.11".parse().unwrap())
        .network("2.2.2.10/32".parse().unwrap())
        .network("198.51.100.0/24".parse().unwrap())
        .redistribute_connected_policed("EXPORT-MED")
        .route_map("IMPORT-CUST", import)
        .route_map("EXPORT-MED", export)
        .prefix_list("CUSTOMER-IN", customers)
}

fn rendered(vendor: Vendor) -> String {
    let spec = representative(vendor);
    let mut cfg = spec.build();
    // Attach policy to the eBGP neighbor so neighbor-level policy lines
    // are exercised in both emitters.
    if let Some(bgp) = cfg.bgp.as_mut() {
        if let Some(n) = bgp.neighbors.first_mut() {
            n.route_map_in = Some("IMPORT-CUST".into());
            n.route_map_out = Some("EXPORT-MED".into());
            n.description = Some("customer peer".into());
        }
    }
    add_production_boilerplate(&mut cfg);
    match vendor {
        Vendor::Ceos => mfv_config::ceos::render(&cfg),
        Vendor::Vjunos => mfv_config::vjunos::render(&cfg),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run UPDATE_GOLDEN=1 cargo test -p mfv-config --test golden",
            path.display()
        )
    });
    if expected != actual {
        // A unified-ish diff beats two 100-line blobs in CI logs.
        let mut diff = String::new();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                diff.push_str(&format!("line {}:\n  -{e}\n  +{a}\n", i + 1));
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            diff.push_str(&format!("line counts differ: golden {el}, actual {al}\n"));
        }
        panic!(
            "{name} drifted from golden file {}:\n{diff}\
             intentional? regenerate with UPDATE_GOLDEN=1",
            path.display()
        );
    }
}

#[test]
fn ceos_emitter_matches_golden() {
    check_golden("ceos.cfg", &rendered(Vendor::Ceos));
}

#[test]
fn vjunos_emitter_matches_golden() {
    check_golden("vjunos.cfg", &rendered(Vendor::Vjunos));
}

/// The emitters and parsers agree: emitted text parses back and re-emits
/// byte-identically (the fixpoint the emulation pipeline relies on when it
/// round-trips configs through files).
#[test]
fn golden_configs_reach_emit_parse_emit_fixpoint() {
    for vendor in [Vendor::Ceos, Vendor::Vjunos] {
        let first = rendered(vendor);
        let reparsed = parse(vendor, &first).expect("emitted config must parse");
        let second = match vendor {
            Vendor::Ceos => mfv_config::ceos::render(&reparsed.config),
            Vendor::Vjunos => mfv_config::vjunos::render(&reparsed.config),
        };
        assert_eq!(first, second, "{vendor}: emit→parse→emit is not a fixpoint");
    }
}
