//! The BGP-4 protocol engine: session FSM, Adj-RIB-In/Out, decision process,
//! and update generation.
//!
//! The engine is a poll-based state machine (smoltcp idiom): the owner feeds
//! it decoded messages via [`BgpEngine::push_msg`] and advances it with
//! [`BgpEngine::poll`], which returns messages to transmit. No I/O or clock
//! access happens inside.
//!
//! Vendor-specific behaviours (the reason the paper insists on running *real
//! implementations*) enter through [`DecisionQuirks`]: the same engine code
//! parameterised differently reproduces, e.g., the "new software version
//! introduced an incorrect route metric selection in iBGP" bug from §2.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::Ipv4Addr;

use mfv_config::{BgpConfig, PrefixList, RouteMap};
use mfv_types::{AsNum, Origin, Prefix, RouteProtocol, RouterId, SimDuration, SimTime};
use mfv_wire::bgp::{BgpMsg, NotificationMsg, OpenMsg, PathAttr, UpdateMsg};

use crate::policy::{eval_route_map, BgpAttrs, PolicyResult};
use crate::rib::{NextHop, RibRoute};

/// Resolves protocol next hops against the IGP/connected routing state.
/// Implemented by the router shell over its current RIB.
pub trait NextHopResolver {
    /// The IGP cost to reach `ip`, or `None` if unreachable. Resolution via
    /// the default route does not count (standard BGP behaviour).
    fn igp_metric(&self, ip: Ipv4Addr) -> Option<u32>;
}

/// A resolver over a fixed table; convenient for tests and injection stubs.
#[derive(Default, Clone, Debug)]
pub struct TableResolver(pub BTreeMap<Ipv4Addr, u32>);

impl NextHopResolver for TableResolver {
    fn igp_metric(&self, ip: Ipv4Addr) -> Option<u32> {
        self.0.get(&ip).copied()
    }
}

/// Vendor-behaviour knobs for the decision process.
#[derive(Clone, Copy, Debug)]
pub struct DecisionQuirks {
    /// BUG REPRODUCTION: prefer the *higher* IGP metric when comparing iBGP
    /// paths (§2: "a new software version ... introduced an incorrect route
    /// metric selection in iBGP").
    pub ibgp_igp_metric_inverted: bool,
    /// Use arrival order as a tiebreak before router-id (oldest wins). Both
    /// vendors do this by default; it is the source of the non-determinism
    /// explored in ablation A1.
    pub arrival_order_tiebreak: bool,
}

impl Default for DecisionQuirks {
    fn default() -> Self {
        DecisionQuirks {
            ibgp_igp_metric_inverted: false,
            arrival_order_tiebreak: true,
        }
    }
}

/// Per-session configuration resolved from the device config.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    pub peer: Ipv4Addr,
    pub remote_as: AsNum,
    /// Our address on this session (interface address for eBGP, update
    /// source loopback for iBGP). Used as the advertised next hop.
    pub local_addr: Ipv4Addr,
    pub next_hop_self: bool,
    pub send_community: bool,
    pub route_map_in: Option<String>,
    pub route_map_out: Option<String>,
    pub rr_client: bool,
    pub shutdown: bool,
}

impl SessionConfig {
    pub fn is_ebgp(&self, local_as: AsNum) -> bool {
        self.remote_as != local_as
    }
}

/// BGP finite-state-machine states (condensed: Connect/Active are folded
/// into Idle since transport is message delivery, not TCP).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    Idle,
    OpenSent,
    OpenConfirm,
    Established,
}

/// A received route in the Adj-RIB-In (post import policy).
#[derive(Clone, Debug)]
struct RibInEntry {
    attrs: BgpAttrs,
    /// Global arrival sequence for the oldest-path tiebreak.
    arrival: u64,
}

struct Session {
    cfg: SessionConfig,
    state: SessionState,
    /// Hold time negotiated (min of ours and peer's).
    hold_time: SimDuration,
    last_rx: SimTime,
    last_keepalive_tx: SimTime,
    /// When Idle: next time we may retry the OPEN.
    retry_at: SimTime,
    rib_in: BTreeMap<Prefix, RibInEntry>,
    rib_out: BTreeMap<Prefix, BgpAttrs>,
    /// FSM state changes since the engine was built — the per-session churn
    /// signal the observability layer aggregates.
    transitions: u64,
    /// A valid OPEN from this peer has been processed at least once since
    /// the engine was built. Gates the lossy-transport shortcut below: a
    /// bare KEEPALIVE may stand in for a *lost* OPEN, but it must never
    /// stand in for one we rejected (e.g. bad peer AS) — otherwise a
    /// misconfigured session could establish without ever being validated.
    open_seen: bool,
    /// A KEEPALIVE arrived in OpenSent before any OPEN was validated
    /// (reordered delivery). Latched until the peer's OPEN shows up: if it
    /// validates, the handshake completes immediately; if it is rejected,
    /// the latch dies with the reset.
    early_keepalive: bool,
}

impl Session {
    fn new(cfg: SessionConfig) -> Session {
        Session {
            cfg,
            state: SessionState::Idle,
            hold_time: SimDuration::from_secs(90),
            last_rx: SimTime::ZERO,
            last_keepalive_tx: SimTime::ZERO,
            retry_at: SimTime::ZERO,
            rib_in: BTreeMap::new(),
            rib_out: BTreeMap::new(),
            transitions: 0,
            open_seen: false,
            early_keepalive: false,
        }
    }

    /// Moves the FSM, counting only real state changes.
    fn set_state(&mut self, new: SessionState) {
        if self.state != new {
            self.transitions += 1;
        }
        self.state = new;
    }

    fn reset(&mut self, now: SimTime, retry_after: SimDuration) {
        self.set_state(SessionState::Idle);
        self.rib_in.clear();
        self.rib_out.clear();
        self.early_keepalive = false;
        self.retry_at = now + retry_after;
    }
}

/// One candidate path considered by the decision process.
#[derive(Clone)]
struct Candidate {
    attrs: BgpAttrs,
    from: Option<Ipv4Addr>,
    ebgp: bool,
    igp_metric: u32,
    arrival: u64,
    peer_router_id: u32,
}

/// What changed in the engine's selection since the owner last asked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectionDelta {
    /// Everything may have changed (full recomputation ran).
    All,
    /// Exactly these prefixes changed selection (may be empty).
    Prefixes(BTreeSet<Prefix>),
}

/// A route selected by the decision process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectedRoute {
    pub prefix: Prefix,
    pub attrs: BgpAttrs,
    /// Peer the best path was learned from; `None` for local originations.
    pub learned_from: Option<Ipv4Addr>,
    /// Whether the winning path is eBGP-learned.
    pub ebgp: bool,
    /// All ECMP protocol next hops (best path's first).
    pub next_hops: Vec<Ipv4Addr>,
}

/// Summary of one neighbor, for `show bgp summary` and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborSummary {
    pub peer: Ipv4Addr,
    pub remote_as: AsNum,
    pub state: SessionState,
    pub prefixes_received: usize,
    pub prefixes_sent: usize,
}

/// The BGP protocol engine for one router.
pub struct BgpEngine {
    local_as: AsNum,
    router_id: RouterId,
    hold_time: SimDuration,
    keepalive: SimDuration,
    retry: SimDuration,
    max_paths: u8,
    quirks: DecisionQuirks,
    sessions: BTreeMap<Ipv4Addr, Session>,
    /// Locally-originated prefixes (network statements / redistribution),
    /// with the attrs they are originated with.
    originated: BTreeMap<Prefix, BgpAttrs>,
    route_maps: BTreeMap<String, RouteMap>,
    prefix_lists: BTreeMap<String, PrefixList>,
    out: VecDeque<(Ipv4Addr, BgpMsg)>,
    arrival_counter: u64,
    /// Result of the last decision run.
    selected: BTreeMap<Prefix, SelectedRoute>,
    /// Prefixes whose candidates changed since the last decision run.
    /// Incremental recomputation keeps a million-route table from being
    /// rescanned on every poll.
    dirty: BTreeSet<Prefix>,
    /// Recompute everything (session churn, IGP change, first run).
    full_dirty: bool,
    /// Selection changes accumulated for the owner (FIB patching).
    selection_delta: SelectionDelta,
    /// Peers whose sessions (re-)established: they need the full table
    /// advertised, without forcing a global recomputation.
    full_advert_peers: BTreeSet<Ipv4Addr>,
}

impl BgpEngine {
    /// Builds an engine from parsed config. `session_local_addrs` maps each
    /// neighbor to our source address for that session (the router shell
    /// resolves update-source interfaces).
    pub fn new(
        cfg: &BgpConfig,
        router_id: RouterId,
        session_local_addrs: &BTreeMap<Ipv4Addr, Ipv4Addr>,
        route_maps: BTreeMap<String, RouteMap>,
        prefix_lists: BTreeMap<String, PrefixList>,
        quirks: DecisionQuirks,
    ) -> BgpEngine {
        let mut sessions = BTreeMap::new();
        for n in &cfg.neighbors {
            let local_addr = session_local_addrs
                .get(&n.peer)
                .copied()
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            sessions.insert(
                n.peer,
                Session::new(SessionConfig {
                    peer: n.peer,
                    remote_as: n.remote_as,
                    local_addr,
                    next_hop_self: n.next_hop_self,
                    send_community: n.send_community,
                    route_map_in: n.route_map_in.clone(),
                    route_map_out: n.route_map_out.clone(),
                    rr_client: n.rr_client,
                    shutdown: n.shutdown,
                }),
            );
        }
        BgpEngine {
            local_as: cfg.asn,
            router_id,
            hold_time: SimDuration::from_secs(90),
            keepalive: SimDuration::from_secs(30),
            retry: SimDuration::from_secs(2),
            max_paths: cfg.max_paths.max(1),
            quirks,
            sessions,
            originated: BTreeMap::new(),
            route_maps,
            prefix_lists,
            out: VecDeque::new(),
            arrival_counter: 0,
            selected: BTreeMap::new(),
            dirty: BTreeSet::new(),
            full_dirty: true,
            selection_delta: SelectionDelta::All,
            full_advert_peers: BTreeSet::new(),
        }
    }

    pub fn local_as(&self) -> AsNum {
        self.local_as
    }

    /// Replaces the set of locally-originated prefixes. `next_hop_unspec`
    /// originations advertise our session address as next hop.
    pub fn set_originated(&mut self, prefixes: impl IntoIterator<Item = Prefix>) {
        let new: BTreeMap<Prefix, BgpAttrs> = prefixes
            .into_iter()
            .map(|p| (p, BgpAttrs::originated(Ipv4Addr::UNSPECIFIED)))
            .collect();
        for p in self.originated.keys().chain(new.keys()) {
            if self.originated.contains_key(p) != new.contains_key(p) {
                self.dirty.insert(*p);
            }
        }
        self.originated = new;
    }

    /// Forces a full decision recomputation on the next poll (the owner
    /// calls this when the IGP view feeding next-hop resolution changed).
    pub fn mark_all_dirty(&mut self) {
        self.full_dirty = true;
    }

    /// Administratively removes a session (used by failure injection).
    pub fn shutdown_session(&mut self, peer: Ipv4Addr, now: SimTime) {
        if let Some(s) = self.sessions.get_mut(&peer) {
            s.cfg.shutdown = true;
            if s.state != SessionState::Idle {
                self.out.push_back((
                    peer,
                    BgpMsg::Notification(NotificationMsg {
                        code: 6, // Cease
                        subcode: 2,
                        data: bytes::Bytes::new(),
                    }),
                ));
            }
            let lost: Vec<Prefix> = s.rib_in.keys().copied().collect();
            s.reset(now, SimDuration::from_secs(u64::MAX / 2_000));
            self.dirty.extend(lost);
        }
    }

    /// Feeds a received message into the engine.
    pub fn push_msg(&mut self, now: SimTime, from: Ipv4Addr, msg: BgpMsg) {
        let Some(session) = self.sessions.get_mut(&from) else {
            // Message from an unconfigured peer: ignore (real routers would
            // not even have a TCP listener match).
            return;
        };
        if session.cfg.shutdown {
            return;
        }
        session.last_rx = now;
        match msg {
            BgpMsg::Open(open) => {
                if open.asn != session.cfg.remote_as {
                    // OPEN from wrong AS: notify and reset.
                    self.out.push_back((
                        from,
                        BgpMsg::Notification(NotificationMsg {
                            code: 2,    // OPEN message error
                            subcode: 2, // bad peer AS
                            data: bytes::Bytes::new(),
                        }),
                    ));
                    let lost: Vec<Prefix> = session.rib_in.keys().copied().collect();
                    session.reset(now, SimDuration::from_secs(5));
                    self.dirty.extend(lost);
                    return;
                }
                session.open_seen = true;
                session.hold_time =
                    SimDuration::from_secs(u64::from(open.hold_time_secs.min(90)).max(3));
                match session.state {
                    SessionState::Idle => {
                        // Passive open: respond with our OPEN + KEEPALIVE.
                        let our_open = OpenMsg::new(
                            self.local_as,
                            (self.hold_time.as_millis() / 1000) as u16,
                            self.router_id.0,
                        );
                        self.out.push_back((from, BgpMsg::Open(our_open)));
                        self.out.push_back((from, BgpMsg::Keepalive));
                        session.set_state(SessionState::OpenConfirm);
                    }
                    SessionState::OpenSent => {
                        // Collision or lossy boot: our own OPEN may never
                        // have reached the peer (dropped pre-transport), so
                        // resend it with the confirm. A duplicate is
                        // absorbed harmlessly in OpenConfirm on their side.
                        let our_open = OpenMsg::new(
                            self.local_as,
                            (self.hold_time.as_millis() / 1000) as u16,
                            self.router_id.0,
                        );
                        self.out.push_back((from, BgpMsg::Open(our_open)));
                        self.out.push_back((from, BgpMsg::Keepalive));
                        if session.early_keepalive {
                            // The peer's confirm overtook its OPEN; now that
                            // the OPEN validated, both halves are in hand.
                            session.early_keepalive = false;
                            session.set_state(SessionState::Established);
                            self.full_advert_peers.insert(from);
                        } else {
                            session.set_state(SessionState::OpenConfirm);
                        }
                    }
                    SessionState::OpenConfirm => {
                        // Duplicate OPEN mid-handshake (our earlier reply may
                        // have been lost in flight): re-confirm so the peer
                        // can make progress instead of deadlocking.
                        self.out.push_back((from, BgpMsg::Keepalive));
                    }
                    SessionState::Established => {
                        // A fresh OPEN on an established session means the
                        // peer restarted: drop the old session state and
                        // re-handshake so the full table is re-sent.
                        let lost: Vec<Prefix> = session.rib_in.keys().copied().collect();
                        session.rib_in.clear();
                        session.rib_out.clear();
                        self.dirty.extend(lost);
                        self.full_advert_peers.insert(from);
                        let our_open = OpenMsg::new(
                            self.local_as,
                            (self.hold_time.as_millis() / 1000) as u16,
                            self.router_id.0,
                        );
                        self.out.push_back((from, BgpMsg::Open(our_open)));
                        self.out.push_back((from, BgpMsg::Keepalive));
                        session.set_state(SessionState::OpenConfirm);
                    }
                }
            }
            BgpMsg::Keepalive => {
                match session.state {
                    SessionState::OpenConfirm => {
                        session.set_state(SessionState::Established);
                        self.full_advert_peers.insert(from);
                    }
                    SessionState::OpenSent => {
                        // A KEEPALIVE implies the peer has processed our
                        // OPEN even though its own OPEN reply was lost;
                        // confirm and come up (lossy-transport robustness).
                        // Only once we have validated an OPEN from this
                        // peer, though — a crossing KEEPALIVE must not let
                        // a rejected session (bad peer AS) sneak up.
                        if session.open_seen {
                            self.out.push_back((from, BgpMsg::Keepalive));
                            session.set_state(SessionState::Established);
                            self.full_advert_peers.insert(from);
                        } else {
                            // No OPEN validated yet: hold the confirm until
                            // one arrives (delivery may have reordered the
                            // peer's OPEN behind its KEEPALIVE).
                            session.early_keepalive = true;
                        }
                    }
                    _ => {}
                }
            }
            BgpMsg::Update(update) => {
                if session.state != SessionState::Established {
                    return;
                }
                self.apply_update(now, from, update);
            }
            BgpMsg::Notification(_) => {
                let lost: Vec<Prefix> = session.rib_in.keys().copied().collect();
                session.reset(now, SimDuration::from_secs(5));
                self.dirty.extend(lost);
            }
        }
    }

    fn apply_update(&mut self, _now: SimTime, from: Ipv4Addr, update: UpdateMsg) {
        let session = self.sessions.get_mut(&from).expect("session exists");
        for p in &update.withdrawn {
            session.rib_in.remove(p);
            self.dirty.insert(*p);
        }
        if update.nlri.is_empty() {
            return;
        }
        let ebgp = session.cfg.is_ebgp(self.local_as);
        let as_path = update.as_path().cloned().unwrap_or_default();
        // eBGP loop prevention: our AS in the path means discard.
        if ebgp && as_path.contains(self.local_as) {
            for p in &update.nlri {
                session.rib_in.remove(p);
            }
            return;
        }
        let Some(next_hop) = update.next_hop() else {
            return; // NLRI without NEXT_HOP is invalid; drop.
        };
        let foreign_attrs: Vec<(u8, u8, bytes::Bytes)> = update
            .attrs
            .iter()
            .filter_map(|a| match a {
                PathAttr::Unknown {
                    flags,
                    type_code,
                    value,
                } => Some((*flags, *type_code, value.clone())),
                _ => None,
            })
            .collect();
        let base = BgpAttrs {
            origin: update.origin().unwrap_or(Origin::Incomplete),
            as_path,
            next_hop,
            med: update.med(),
            local_pref: update.local_pref(),
            communities: update.communities(),
            foreign_attrs,
        };
        let rm_in = session.cfg.route_map_in.clone();
        let arrival_base = self.arrival_counter;
        let mut accepted: Vec<(Prefix, BgpAttrs)> = Vec::new();
        for (i, prefix) in update.nlri.iter().enumerate() {
            let attrs = match &rm_in {
                Some(name) => match self.route_maps.get(name) {
                    Some(rm) => match eval_route_map(rm, &self.prefix_lists, prefix, &base) {
                        PolicyResult::Permit(a) => a,
                        PolicyResult::Deny => {
                            continue;
                        }
                    },
                    // Referencing a missing route-map denies everything
                    // (matching EOS behaviour).
                    None => continue,
                },
                None => base.clone(),
            };
            accepted.push((*prefix, attrs));
            self.arrival_counter = arrival_base + i as u64 + 1;
        }
        for prefix in &update.nlri {
            // NLRI prefixes that policy rejected are implicitly withdrawn,
            // so they are decision-relevant too.
            self.dirty.insert(*prefix);
        }
        let session = self.sessions.get_mut(&from).expect("session exists");
        for (i, (prefix, attrs)) in accepted.into_iter().enumerate() {
            session.rib_in.insert(
                prefix,
                RibInEntry {
                    attrs,
                    arrival: arrival_base + i as u64,
                },
            );
        }
    }

    /// Advances timers, runs the decision process, and generates updates.
    /// Returns messages to deliver.
    pub fn poll(
        &mut self,
        now: SimTime,
        resolver: &dyn NextHopResolver,
    ) -> Vec<(Ipv4Addr, BgpMsg)> {
        // 1. Session liveness: hold timer + transport reachability.
        let peers: Vec<Ipv4Addr> = self.sessions.keys().copied().collect();
        for peer in &peers {
            let s = self.sessions.get_mut(peer).unwrap();
            if s.cfg.shutdown {
                continue;
            }
            // Transport liveness: losing the route to the peer tears the
            // TCP session down. Without this, updates enqueued while the
            // peer is unreachable would be silently lost although the
            // Adj-RIB-Out believes them delivered.
            let peer_reachable = resolver.igp_metric(s.cfg.peer).is_some();
            if s.state != SessionState::Idle {
                let hold_expired = now.since(s.last_rx) > s.hold_time;
                if hold_expired || !peer_reachable {
                    let lost: Vec<Prefix> = s.rib_in.keys().copied().collect();
                    s.reset(now, self.retry);
                    self.dirty.extend(lost);
                    continue;
                }
                if s.state == SessionState::Established
                    && now.since(s.last_keepalive_tx) >= self.keepalive
                {
                    s.last_keepalive_tx = now;
                    self.out.push_back((*peer, BgpMsg::Keepalive));
                }
            } else if now >= s.retry_at {
                if peer_reachable {
                    // Active open.
                    let our_open = OpenMsg::new(
                        self.local_as,
                        (self.hold_time.as_millis() / 1000) as u16,
                        self.router_id.0,
                    );
                    s.set_state(SessionState::OpenSent);
                    s.last_rx = now; // arm hold timer from the attempt
                    s.retry_at = now + self.retry;
                    self.out.push_back((*peer, BgpMsg::Open(our_open)));
                } else {
                    // No transport to the peer yet: re-arm the retry timer
                    // so the wakeup schedule stays coarse.
                    s.retry_at = now + self.retry;
                }
            }
            // OpenSent/OpenConfirm retry: if stuck past retry interval, fall
            // back to Idle so we re-OPEN (covers lost messages).
            let s = self.sessions.get_mut(peer).unwrap();
            if matches!(s.state, SessionState::OpenSent | SessionState::OpenConfirm)
                && now.since(s.last_rx) > self.retry.saturating_mul(5)
            {
                let lost: Vec<Prefix> = s.rib_in.keys().copied().collect();
                s.reset(now, self.retry);
                self.dirty.extend(lost);
            }
        }

        // 2 + 3. Decision process and update generation, scoped to the
        // prefixes whose inputs changed (None = everything).
        let scope: Option<BTreeSet<Prefix>> = if self.full_dirty {
            None
        } else {
            Some(std::mem::take(&mut self.dirty))
        };
        let full_advert = std::mem::take(&mut self.full_advert_peers);
        let nothing_dirty = matches!(&scope, Some(s) if s.is_empty()) && full_advert.is_empty();
        if !nothing_dirty {
            self.run_decision(resolver, scope.as_ref());
            self.generate_updates(scope.as_ref(), &full_advert);
        }
        self.full_dirty = false;
        self.dirty.clear();

        self.out.drain(..).collect()
    }

    /// The earliest time at which a timer needs servicing.
    pub fn next_wakeup(&self, now: SimTime) -> SimTime {
        let mut next = now + self.keepalive;
        for s in self.sessions.values() {
            if s.cfg.shutdown {
                continue;
            }
            let candidate = match s.state {
                SessionState::Idle => {
                    // An overdue retry must fire at the very next poll.
                    if s.retry_at > now {
                        s.retry_at
                    } else {
                        SimTime(now.0 + 1)
                    }
                }
                SessionState::Established => s.last_keepalive_tx + self.keepalive,
                _ => s.last_rx + self.retry.saturating_mul(5),
            };
            let candidate = candidate.max(SimTime(now.0 + 1));
            if candidate < next {
                next = candidate;
            }
        }
        next
    }

    /// Total FSM state changes across all sessions since the engine was
    /// built (session churn, for the observability layer).
    pub fn session_transitions(&self) -> u64 {
        self.sessions.values().map(|s| s.transitions).sum()
    }

    /// The currently selected BGP routes, as RIB candidates.
    pub fn rib_routes(&self) -> Vec<RibRoute> {
        self.selected
            .values()
            .filter(|s| s.learned_from.is_some())
            .map(|s| {
                let proto = if s.ebgp {
                    RouteProtocol::EbgpLearned
                } else {
                    RouteProtocol::IbgpLearned
                };
                RibRoute {
                    prefix: s.prefix,
                    proto,
                    admin_distance: mfv_types::AdminDistance::default_for(proto),
                    metric: s.attrs.med.unwrap_or(0),
                    next_hops: s.next_hops.iter().map(|nh| NextHop::Via(*nh)).collect(),
                }
            })
            .collect()
    }

    /// Introspection: the full selection (including local originations).
    pub fn selected(&self) -> &BTreeMap<Prefix, SelectedRoute> {
        &self.selected
    }

    /// Introspection: per-neighbor summaries.
    pub fn summaries(&self) -> Vec<NeighborSummary> {
        self.sessions
            .values()
            .map(|s| NeighborSummary {
                peer: s.cfg.peer,
                remote_as: s.cfg.remote_as,
                state: s.state,
                prefixes_received: s.rib_in.len(),
                prefixes_sent: s.rib_out.len(),
            })
            .collect()
    }

    pub fn session_state(&self, peer: Ipv4Addr) -> Option<SessionState> {
        self.sessions.get(&peer).map(|s| s.state)
    }

    /// One candidate path for a prefix.
    fn gather_candidates(&self, prefix: &Prefix, resolver: &dyn NextHopResolver) -> Vec<Candidate> {
        let mut cands = Vec::new();
        if let Some(attrs) = self.originated.get(prefix) {
            cands.push(Candidate {
                attrs: attrs.clone(),
                from: None,
                ebgp: false,
                igp_metric: 0,
                arrival: 0,
                peer_router_id: 0,
            });
        }
        for (peer, session) in &self.sessions {
            if session.state != SessionState::Established {
                continue;
            }
            let Some(entry) = session.rib_in.get(prefix) else {
                continue;
            };
            // Next hop must resolve through the IGP (not default).
            let Some(igp_metric) = resolver.igp_metric(entry.attrs.next_hop) else {
                continue;
            };
            cands.push(Candidate {
                attrs: entry.attrs.clone(),
                from: Some(*peer),
                ebgp: session.cfg.is_ebgp(self.local_as),
                igp_metric,
                arrival: entry.arrival,
                peer_router_id: u32::from(*peer),
            });
        }
        cands
    }

    /// RFC 4271 §9.1.2.2 best-path selection over one prefix's candidates,
    /// with the engine's vendor quirks applied.
    fn select_best(&self, prefix: Prefix, mut cands: Vec<Candidate>) -> Option<SelectedRoute> {
        if cands.is_empty() {
            return None;
        }
        let quirks = self.quirks;
        // Deterministic initial order.
        cands.sort_by_key(|c| (c.from, c.arrival));
        let best_idx = cands
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                // 1. Highest local-pref (default 100).
                let lp_a = a.attrs.local_pref.unwrap_or(100);
                let lp_b = b.attrs.local_pref.unwrap_or(100);
                lp_b.cmp(&lp_a)
                    // 2. Locally-originated first.
                    .then_with(|| a.from.is_some().cmp(&b.from.is_some()))
                    // 3. Shortest AS path.
                    .then_with(|| {
                        a.attrs
                            .as_path
                            .route_len()
                            .cmp(&b.attrs.as_path.route_len())
                    })
                    // 4. Lowest origin.
                    .then_with(|| a.attrs.origin.cmp(&b.attrs.origin))
                    // 5. Lowest MED among routes from the same first AS.
                    .then_with(|| {
                        if a.attrs.as_path.first_as() == b.attrs.as_path.first_as() {
                            a.attrs.med.unwrap_or(0).cmp(&b.attrs.med.unwrap_or(0))
                        } else {
                            std::cmp::Ordering::Equal
                        }
                    })
                    // 6. eBGP over iBGP.
                    .then_with(|| b.ebgp.cmp(&a.ebgp))
                    // 7. Lowest IGP metric to next hop (or the vendor's
                    //    inverted comparison for iBGP when buggy).
                    .then_with(|| {
                        if quirks.ibgp_igp_metric_inverted && !a.ebgp && !b.ebgp {
                            b.igp_metric.cmp(&a.igp_metric)
                        } else {
                            a.igp_metric.cmp(&b.igp_metric)
                        }
                    })
                    // 8. Oldest path (arrival order), if enabled.
                    .then_with(|| {
                        if quirks.arrival_order_tiebreak {
                            a.arrival.cmp(&b.arrival)
                        } else {
                            std::cmp::Ordering::Equal
                        }
                    })
                    // 9. Lowest peer router id / address.
                    .then_with(|| a.peer_router_id.cmp(&b.peer_router_id))
            })
            .map(|(i, _)| i)?;
        let best = cands[best_idx].clone();

        // ECMP: additional paths equal through step 7.
        let mut next_hops = vec![best.attrs.next_hop];
        let max_paths = self.max_paths as usize;
        if max_paths > 1 {
            for (i, c) in cands.iter().enumerate() {
                if i == best_idx || next_hops.len() >= max_paths {
                    continue;
                }
                let equal = c.attrs.local_pref.unwrap_or(100)
                    == best.attrs.local_pref.unwrap_or(100)
                    && c.from.is_some() == best.from.is_some()
                    && c.attrs.as_path.route_len() == best.attrs.as_path.route_len()
                    && c.attrs.origin == best.attrs.origin
                    && c.ebgp == best.ebgp
                    && c.igp_metric == best.igp_metric;
                if equal && !next_hops.contains(&c.attrs.next_hop) {
                    next_hops.push(c.attrs.next_hop);
                }
            }
        }

        Some(SelectedRoute {
            prefix,
            attrs: best.attrs,
            learned_from: best.from,
            ebgp: best.ebgp,
            next_hops,
        })
    }

    /// Recomputes the decision for `scope` prefixes (None = every prefix
    /// with any candidate).
    fn run_decision(&mut self, resolver: &dyn NextHopResolver, scope: Option<&BTreeSet<Prefix>>) {
        let prefixes: Vec<Prefix> = match scope {
            Some(set) => set.iter().copied().collect(),
            None => {
                self.selection_delta = SelectionDelta::All;
                let mut all: BTreeSet<Prefix> = self.originated.keys().copied().collect();
                for session in self.sessions.values() {
                    if session.state == SessionState::Established {
                        all.extend(session.rib_in.keys().copied());
                    }
                }
                // Previously-selected prefixes may need removal too.
                all.extend(self.selected.keys().copied());
                all.into_iter().collect()
            }
        };
        for prefix in prefixes {
            let cands = self.gather_candidates(&prefix, resolver);
            let changed = match self.select_best(prefix, cands) {
                Some(route) => self.selected.insert(prefix, route.clone()) != Some(route),
                None => self.selected.remove(&prefix).is_some(),
            };
            if changed {
                if let SelectionDelta::Prefixes(set) = &mut self.selection_delta {
                    set.insert(prefix);
                }
            }
        }
    }

    /// Hands the accumulated selection changes to the owner and resets the
    /// accumulator.
    pub fn take_selection_delta(&mut self) -> SelectionDelta {
        std::mem::replace(
            &mut self.selection_delta,
            SelectionDelta::Prefixes(BTreeSet::new()),
        )
    }

    /// The attributes this session should advertise for `route`, or `None`
    /// when export rules / policy suppress it.
    fn advert_attrs(
        route: &SelectedRoute,
        scfg: &SessionConfig,
        from_client: bool,
        local_as: AsNum,
        route_maps: &BTreeMap<String, RouteMap>,
        prefix_lists: &BTreeMap<String, PrefixList>,
    ) -> Option<BgpAttrs> {
        // Never advertise back to the peer we learned it from.
        if route.learned_from == Some(scfg.peer) {
            return None;
        }
        let ebgp_peer = scfg.is_ebgp(local_as);
        // iBGP split horizon: iBGP-learned routes go to iBGP peers only when
        // reflection applies.
        if !ebgp_peer && route.learned_from.is_some() && !route.ebgp {
            let to_client = scfg.rr_client;
            if !from_client && !to_client {
                return None;
            }
        }

        let mut attrs = route.attrs.clone();
        if ebgp_peer {
            attrs.as_path = attrs.as_path.prepend(local_as);
            attrs.local_pref = None;
            attrs.med = None;
            attrs.next_hop = scfg.local_addr;
        } else {
            attrs.local_pref = Some(attrs.local_pref.unwrap_or(100));
            // `next-hop-self` rewrites eBGP-learned routes advertised into
            // iBGP (the vendor default); *reflected* iBGP routes keep the
            // originator's next hop, so a route reflector never inserts
            // itself into the forwarding path of its clients.
            if route.learned_from.is_none() || (scfg.next_hop_self && route.ebgp) {
                attrs.next_hop = scfg.local_addr;
            }
        }
        if attrs.next_hop == Ipv4Addr::UNSPECIFIED {
            attrs.next_hop = scfg.local_addr;
        }
        if !scfg.send_community {
            attrs.communities.clear();
        }

        match &scfg.route_map_out {
            Some(name) => match route_maps.get(name) {
                Some(rm) => match eval_route_map(rm, prefix_lists, &route.prefix, &attrs) {
                    PolicyResult::Permit(a) => Some(a),
                    PolicyResult::Deny => None,
                },
                // Referencing a missing route-map denies everything.
                None => None,
            },
            None => Some(attrs),
        }
    }

    /// Diffs the desired advertisements against each session's Adj-RIB-Out
    /// and queues UPDATE messages, scoped to the changed prefixes.
    fn generate_updates(
        &mut self,
        scope: Option<&BTreeSet<Prefix>>,
        full_advert: &BTreeSet<Ipv4Addr>,
    ) {
        let local_as = self.local_as;
        let route_maps = std::mem::take(&mut self.route_maps);
        let prefix_lists = std::mem::take(&mut self.prefix_lists);

        // Prefix universe for the incremental diff.
        let prefixes: Vec<Prefix> = match scope {
            Some(set) => set.iter().copied().collect(),
            None => {
                let mut all: BTreeSet<Prefix> = self.selected.keys().copied().collect();
                for session in self.sessions.values() {
                    all.extend(session.rib_out.keys().copied());
                }
                all.into_iter().collect()
            }
        };

        // RR-client provenance resolver (cheap per-route lookup).
        let rr_clients: BTreeSet<Ipv4Addr> = self
            .sessions
            .values()
            .filter(|s| s.cfg.rr_client)
            .map(|s| s.cfg.peer)
            .collect();
        let from_client = |route: &SelectedRoute| {
            route
                .learned_from
                .map(|p| rr_clients.contains(&p))
                .unwrap_or(false)
        };

        let selected = std::mem::take(&mut self.selected);
        // A freshly-established session needs its full Adj-RIB-Out computed,
        // not just the changed prefixes.
        let full_universe: Vec<Prefix> = if full_advert.is_empty() {
            Vec::new()
        } else {
            selected.keys().copied().collect()
        };
        for session in self.sessions.values_mut() {
            if session.state != SessionState::Established {
                continue;
            }
            let scfg = session.cfg.clone();
            let prefixes: &Vec<Prefix> = if full_advert.contains(&scfg.peer) {
                &full_universe
            } else {
                &prefixes
            };

            let mut withdrawals: Vec<Prefix> = Vec::new();
            let mut announcements: Vec<(Prefix, BgpAttrs)> = Vec::new();
            for prefix in prefixes {
                let want = selected.get(prefix).and_then(|route| {
                    Self::advert_attrs(
                        route,
                        &scfg,
                        from_client(route),
                        local_as,
                        &route_maps,
                        &prefix_lists,
                    )
                });
                match (want, session.rib_out.get(prefix)) {
                    (None, Some(_)) => withdrawals.push(*prefix),
                    (Some(attrs), prev) if prev != Some(&attrs) => {
                        announcements.push((*prefix, attrs));
                    }
                    _ => {}
                }
            }

            if !withdrawals.is_empty() {
                for p in &withdrawals {
                    session.rib_out.remove(p);
                }
                for chunk in withdrawals.chunks(2000) {
                    self.out.push_back((
                        scfg.peer,
                        BgpMsg::Update(UpdateMsg::withdraw(chunk.to_vec())),
                    ));
                }
            }
            // RFC 4271 packing: prefixes sharing identical attributes ride
            // in one UPDATE. Essential at production-route scale — a
            // million-route feed is a few thousand messages, not a million.
            let mut grouped: BTreeMap<BgpAttrs, Vec<Prefix>> = BTreeMap::new();
            for (prefix, attrs) in announcements {
                session.rib_out.insert(prefix, attrs.clone());
                grouped.entry(attrs).or_default().push(prefix);
            }
            for (attrs, prefixes) in grouped {
                let mut wire_attrs = vec![
                    PathAttr::Origin(attrs.origin),
                    PathAttr::AsPath(attrs.as_path.clone()),
                    PathAttr::NextHop(attrs.next_hop),
                ];
                if let Some(med) = attrs.med {
                    wire_attrs.push(PathAttr::Med(med));
                }
                if let Some(lp) = attrs.local_pref {
                    wire_attrs.push(PathAttr::LocalPref(lp));
                }
                if !attrs.communities.is_empty() {
                    wire_attrs.push(PathAttr::Communities(attrs.communities.clone()));
                }
                for (flags, type_code, value) in &attrs.foreign_attrs {
                    // Unknown transitive attributes propagate with the
                    // partial bit set; non-transitive ones are dropped.
                    if flags & mfv_wire::bgp::FLAG_TRANSITIVE != 0 {
                        wire_attrs.push(PathAttr::Unknown {
                            flags: flags | mfv_wire::bgp::FLAG_PARTIAL,
                            type_code: *type_code,
                            value: value.clone(),
                        });
                    }
                }
                // Cap NLRI per message so the 2-byte frame length holds.
                for chunk in prefixes.chunks(2000) {
                    self.out.push_back((
                        scfg.peer,
                        BgpMsg::Update(UpdateMsg {
                            withdrawn: vec![],
                            attrs: wire_attrs.clone(),
                            nlri: chunk.to_vec(),
                        }),
                    ));
                }
            }
        }
        self.selected = selected;
        self.route_maps = route_maps;
        self.prefix_lists = prefix_lists;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::BgpNeighborConfig;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Builds a two-router eBGP pair and drives both engines until quiet.
    struct Pair {
        a: BgpEngine,
        b: BgpEngine,
        now: SimTime,
        resolver: TableResolver,
    }

    impl Pair {
        fn new_ebgp() -> Pair {
            let mut cfg_a = BgpConfig::new(AsNum(65001));
            cfg_a
                .neighbors
                .push(BgpNeighborConfig::new(ip("10.0.0.2"), AsNum(65002)));
            let mut cfg_b = BgpConfig::new(AsNum(65002));
            cfg_b
                .neighbors
                .push(BgpNeighborConfig::new(ip("10.0.0.1"), AsNum(65001)));

            let mut locals_a = BTreeMap::new();
            locals_a.insert(ip("10.0.0.2"), ip("10.0.0.1"));
            let mut locals_b = BTreeMap::new();
            locals_b.insert(ip("10.0.0.1"), ip("10.0.0.2"));

            let a = BgpEngine::new(
                &cfg_a,
                RouterId(ip("1.1.1.1")),
                &locals_a,
                BTreeMap::new(),
                BTreeMap::new(),
                DecisionQuirks::default(),
            );
            let b = BgpEngine::new(
                &cfg_b,
                RouterId(ip("2.2.2.2")),
                &locals_b,
                BTreeMap::new(),
                BTreeMap::new(),
                DecisionQuirks::default(),
            );
            let mut resolver = TableResolver::default();
            resolver.0.insert(ip("10.0.0.1"), 0);
            resolver.0.insert(ip("10.0.0.2"), 0);
            Pair {
                a,
                b,
                now: SimTime::ZERO,
                resolver,
            }
        }

        /// Runs both engines, shuttling messages, until no more traffic.
        fn settle(&mut self) {
            for _ in 0..50 {
                self.now += SimDuration::from_millis(100);
                let out_a = self.a.poll(self.now, &self.resolver);
                let out_b = self.b.poll(self.now, &self.resolver);
                if out_a.is_empty() && out_b.is_empty() {
                    break;
                }
                for (_peer, msg) in out_a {
                    self.b.push_msg(self.now, ip("10.0.0.1"), msg);
                }
                for (_peer, msg) in out_b {
                    self.a.push_msg(self.now, ip("10.0.0.2"), msg);
                }
            }
        }
    }

    #[test]
    fn ebgp_session_establishes() {
        let mut pair = Pair::new_ebgp();
        pair.settle();
        assert_eq!(
            pair.a.session_state(ip("10.0.0.2")),
            Some(SessionState::Established)
        );
        assert_eq!(
            pair.b.session_state(ip("10.0.0.1")),
            Some(SessionState::Established)
        );
    }

    #[test]
    fn originated_route_propagates_with_as_path() {
        let mut pair = Pair::new_ebgp();
        pair.a.set_originated([pfx("203.0.113.0/24")]);
        pair.settle();
        let routes = pair.b.rib_routes();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].prefix, pfx("203.0.113.0/24"));
        assert_eq!(routes[0].proto, RouteProtocol::EbgpLearned);
        assert_eq!(routes[0].next_hops, vec![NextHop::Via(ip("10.0.0.1"))]);
        let sel = pair.b.selected().get(&pfx("203.0.113.0/24")).unwrap();
        assert_eq!(
            sel.attrs.as_path,
            mfv_types::AsPath::sequence([AsNum(65001)])
        );
    }

    #[test]
    fn withdrawal_propagates() {
        let mut pair = Pair::new_ebgp();
        pair.a.set_originated([pfx("203.0.113.0/24")]);
        pair.settle();
        assert_eq!(pair.b.rib_routes().len(), 1);
        pair.a.set_originated([]);
        pair.settle();
        assert!(pair.b.rib_routes().is_empty());
    }

    #[test]
    fn session_shutdown_flushes_routes() {
        let mut pair = Pair::new_ebgp();
        pair.a.set_originated([pfx("203.0.113.0/24")]);
        pair.settle();
        pair.a.shutdown_session(ip("10.0.0.2"), pair.now);
        pair.settle();
        assert!(
            pair.b.rib_routes().is_empty(),
            "notification must flush peer routes"
        );
        assert_eq!(
            pair.b.session_state(ip("10.0.0.1")),
            Some(SessionState::Idle)
        );
    }

    #[test]
    fn hold_timer_expiry_resets_session() {
        let mut pair = Pair::new_ebgp();
        pair.settle();
        assert_eq!(
            pair.a.session_state(ip("10.0.0.2")),
            Some(SessionState::Established)
        );
        // Stop delivering B's messages; advance past hold time.
        pair.now += SimDuration::from_secs(200);
        let _ = pair.a.poll(pair.now, &pair.resolver.clone());
        assert_eq!(
            pair.a.session_state(ip("10.0.0.2")),
            Some(SessionState::Idle)
        );
    }

    #[test]
    fn wrong_as_in_open_is_rejected() {
        let mut pair = Pair::new_ebgp();
        // B pretends to be AS 65999.
        pair.a.push_msg(
            pair.now,
            ip("10.0.0.2"),
            BgpMsg::Open(OpenMsg::new(AsNum(65999), 90, ip("9.9.9.9"))),
        );
        let out = pair.a.poll(pair.now, &pair.resolver.clone());
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, BgpMsg::Notification(n) if n.code == 2)));
        assert_eq!(
            pair.a.session_state(ip("10.0.0.2")),
            Some(SessionState::Idle)
        );
    }

    #[test]
    fn unresolvable_next_hop_excluded_from_decision() {
        let mut pair = Pair::new_ebgp();
        pair.a.set_originated([pfx("203.0.113.0/24")]);
        pair.settle();
        assert_eq!(pair.b.rib_routes().len(), 1);
        // Remove the resolver entry for A's address; B should drop the route.
        pair.resolver.0.remove(&ip("10.0.0.1"));
        pair.settle();
        assert!(pair.b.rib_routes().is_empty());
    }

    #[test]
    fn local_pref_beats_shorter_as_path() {
        // Single engine with two eBGP peers offering the same prefix.
        let mut cfg = BgpConfig::new(AsNum(65000));
        cfg.neighbors
            .push(BgpNeighborConfig::new(ip("10.0.0.1"), AsNum(65001)));
        cfg.neighbors
            .push(BgpNeighborConfig::new(ip("10.0.1.1"), AsNum(65002)));
        let mut locals = BTreeMap::new();
        locals.insert(ip("10.0.0.1"), ip("10.0.0.0"));
        locals.insert(ip("10.0.1.1"), ip("10.0.1.0"));
        // Import policy on peer 2 sets local-pref 200.
        let mut rms = BTreeMap::new();
        rms.insert(
            "LP200".to_string(),
            RouteMap {
                entries: vec![mfv_config::RouteMapEntry {
                    seq: 10,
                    action: mfv_config::PolicyAction::Permit,
                    matches: vec![],
                    sets: vec![mfv_config::SetClause::LocalPref(200)],
                }],
            },
        );
        cfg.neighbors[1].route_map_in = Some("LP200".to_string());
        let mut engine = BgpEngine::new(
            &cfg,
            RouterId(ip("3.3.3.3")),
            &locals,
            rms,
            BTreeMap::new(),
            DecisionQuirks::default(),
        );
        let mut resolver = TableResolver::default();
        resolver.0.insert(ip("10.0.0.1"), 1);
        resolver.0.insert(ip("10.0.1.1"), 1);

        let now = SimTime(1000);
        // Establish both sessions by hand.
        for peer in [ip("10.0.0.1"), ip("10.0.1.1")] {
            let _ = engine.poll(now, &resolver);
            engine.push_msg(
                now,
                peer,
                BgpMsg::Open(OpenMsg::new(
                    if peer == ip("10.0.0.1") {
                        AsNum(65001)
                    } else {
                        AsNum(65002)
                    },
                    90,
                    peer,
                )),
            );
            engine.push_msg(now, peer, BgpMsg::Keepalive);
        }
        assert_eq!(
            engine.session_state(ip("10.0.0.1")),
            Some(SessionState::Established)
        );

        // Peer 1 offers a SHORT path; peer 2 a LONG path but higher LP.
        let update = |asns: Vec<u32>, nh: &str| {
            BgpMsg::Update(UpdateMsg {
                withdrawn: vec![],
                attrs: vec![
                    PathAttr::Origin(Origin::Igp),
                    PathAttr::AsPath(mfv_types::AsPath::sequence(asns.into_iter().map(AsNum))),
                    PathAttr::NextHop(ip(nh)),
                ],
                nlri: vec![pfx("203.0.113.0/24")],
            })
        };
        engine.push_msg(now, ip("10.0.0.1"), update(vec![65001], "10.0.0.1"));
        engine.push_msg(
            now,
            ip("10.0.1.1"),
            update(vec![65002, 65009, 65010], "10.0.1.1"),
        );
        let _ = engine.poll(now, &resolver);
        let sel = engine.selected().get(&pfx("203.0.113.0/24")).unwrap();
        assert_eq!(sel.learned_from, Some(ip("10.0.1.1")), "LP 200 must win");
        assert_eq!(sel.attrs.local_pref, Some(200));
    }

    #[test]
    fn ebgp_loop_prevention_discards_own_as() {
        let mut pair = Pair::new_ebgp();
        pair.settle();
        // B sends A a route already carrying A's AS.
        pair.a.push_msg(
            pair.now,
            ip("10.0.0.2"),
            BgpMsg::Update(UpdateMsg {
                withdrawn: vec![],
                attrs: vec![
                    PathAttr::Origin(Origin::Igp),
                    PathAttr::AsPath(mfv_types::AsPath::sequence([AsNum(65002), AsNum(65001)])),
                    PathAttr::NextHop(ip("10.0.0.2")),
                ],
                nlri: vec![pfx("198.51.100.0/24")],
            }),
        );
        let _ = pair.a.poll(pair.now, &pair.resolver.clone());
        assert!(pair.a.rib_routes().is_empty());
    }

    #[test]
    fn ibgp_metric_bug_flips_selection() {
        // One engine, two iBGP peers offering the same prefix with different
        // IGP metrics to their next hops.
        let build = |quirks: DecisionQuirks| {
            let mut cfg = BgpConfig::new(AsNum(65000));
            cfg.neighbors
                .push(BgpNeighborConfig::new(ip("2.2.2.1"), AsNum(65000)));
            cfg.neighbors
                .push(BgpNeighborConfig::new(ip("2.2.2.2"), AsNum(65000)));
            let mut locals = BTreeMap::new();
            locals.insert(ip("2.2.2.1"), ip("2.2.2.9"));
            locals.insert(ip("2.2.2.2"), ip("2.2.2.9"));
            let mut engine = BgpEngine::new(
                &cfg,
                RouterId(ip("2.2.2.9")),
                &locals,
                BTreeMap::new(),
                BTreeMap::new(),
                quirks,
            );
            let mut resolver = TableResolver::default();
            resolver.0.insert(ip("2.2.2.1"), 10); // near
            resolver.0.insert(ip("2.2.2.2"), 100); // far
            let now = SimTime(1000);
            for peer in [ip("2.2.2.1"), ip("2.2.2.2")] {
                let _ = engine.poll(now, &resolver);
                engine.push_msg(
                    now,
                    peer,
                    BgpMsg::Open(OpenMsg::new(AsNum(65000), 90, peer)),
                );
                engine.push_msg(now, peer, BgpMsg::Keepalive);
            }
            for peer in [ip("2.2.2.1"), ip("2.2.2.2")] {
                engine.push_msg(
                    now,
                    peer,
                    BgpMsg::Update(UpdateMsg {
                        withdrawn: vec![],
                        attrs: vec![
                            PathAttr::Origin(Origin::Igp),
                            PathAttr::AsPath(mfv_types::AsPath::sequence([AsNum(65099)])),
                            PathAttr::NextHop(peer),
                            PathAttr::LocalPref(100),
                        ],
                        nlri: vec![pfx("203.0.113.0/24")],
                    }),
                );
            }
            let _ = engine.poll(now, &resolver);
            engine
                .selected()
                .get(&pfx("203.0.113.0/24"))
                .unwrap()
                .clone()
        };

        let correct = build(DecisionQuirks::default());
        assert_eq!(
            correct.learned_from,
            Some(ip("2.2.2.1")),
            "nearest exit wins"
        );

        let buggy = build(DecisionQuirks {
            ibgp_igp_metric_inverted: true,
            arrival_order_tiebreak: true,
        });
        assert_eq!(
            buggy.learned_from,
            Some(ip("2.2.2.2")),
            "the vendor bug selects the farther exit"
        );
    }

    #[test]
    fn neighbor_summaries_report_counts() {
        let mut pair = Pair::new_ebgp();
        pair.a
            .set_originated([pfx("203.0.113.0/24"), pfx("198.51.100.0/24")]);
        pair.settle();
        let sums = pair.a.summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].state, SessionState::Established);
        assert_eq!(sums[0].prefixes_sent, 2);
        let sums_b = pair.b.summaries();
        assert_eq!(sums_b[0].prefixes_received, 2);
    }

    #[test]
    fn foreign_transitive_attr_propagates_with_partial_bit() {
        // A 3-router chain: X --ebgp-- A --ebgp-- (observe A's output).
        let mut pair = Pair::new_ebgp();
        pair.settle();
        // Inject into A (from B) a route carrying an unknown transitive attr.
        pair.a.push_msg(
            pair.now,
            ip("10.0.0.2"),
            BgpMsg::Update(UpdateMsg {
                withdrawn: vec![],
                attrs: vec![
                    PathAttr::Origin(Origin::Igp),
                    PathAttr::AsPath(mfv_types::AsPath::sequence([AsNum(65002)])),
                    PathAttr::NextHop(ip("10.0.0.2")),
                    PathAttr::Unknown {
                        flags: mfv_wire::bgp::FLAG_OPTIONAL | mfv_wire::bgp::FLAG_TRANSITIVE,
                        type_code: 213,
                        value: bytes::Bytes::from_static(&[1, 2, 3]),
                    },
                ],
                nlri: vec![pfx("198.51.100.0/24")],
            }),
        );
        let _ = pair.a.poll(pair.now, &pair.resolver.clone());
        let sel = pair.a.selected().get(&pfx("198.51.100.0/24")).unwrap();
        assert_eq!(sel.attrs.foreign_attrs.len(), 1);
        assert_eq!(sel.attrs.foreign_attrs[0].1, 213);
    }
}
