//! The IS-IS protocol engine: p2p adjacency formation (three-way handshake),
//! LSP flooding with CSNP/PSNP database synchronisation, and SPF route
//! computation.
//!
//! Poll-based like [`crate::bgp::BgpEngine`]: PDUs in via
//! [`IsisEngine::push_pdu`], PDUs out via [`IsisEngine::poll`].

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::net::Ipv4Addr;

use bytes::Bytes;

use mfv_types::{IfaceAddr, IfaceId, Prefix, RouteProtocol, SimDuration, SimTime};
use mfv_wire::isis::{
    AdjState, Csnp, IpReach, IsNeighbor, IsisPdu, Lsp, LspEntry, LspId, P2pHello, Psnp, SystemId,
    Tlv, NLPID_IPV4,
};

use crate::rib::{NextHop, RibRoute};

/// Per-interface IS-IS configuration.
#[derive(Clone, Debug)]
pub struct IsisIfaceConfig {
    pub iface: IfaceId,
    pub addr: IfaceAddr,
    pub metric: u32,
    /// Passive interfaces are announced but form no adjacencies.
    pub passive: bool,
}

/// Engine-level configuration.
#[derive(Clone, Debug)]
pub struct IsisEngineConfig {
    pub system_id: SystemId,
    /// Area bytes (AFI + area id) from the NET.
    pub area: Bytes,
    pub hostname: String,
    pub ifaces: Vec<IsisIfaceConfig>,
    /// Hello interval (default 10 s).
    pub hello_interval: SimDuration,
    /// Adjacency hold time (default 30 s).
    pub hold_time: SimDuration,
}

impl IsisEngineConfig {
    pub fn new(system_id: SystemId, area: Bytes, hostname: impl Into<String>) -> Self {
        IsisEngineConfig {
            system_id,
            area,
            hostname: hostname.into(),
            ifaces: Vec::new(),
            hello_interval: SimDuration::from_secs(10),
            hold_time: SimDuration::from_secs(30),
        }
    }
}

/// State of one adjacency.
#[derive(Clone, Debug)]
struct Adjacency {
    state: AdjState,
    neighbor: Option<SystemId>,
    /// Neighbor's interface address (from the hello), the IGP next hop.
    neighbor_addr: Option<Ipv4Addr>,
    expires: SimTime,
    last_hello_tx: Option<SimTime>,
    /// Interface administratively/physically up.
    link_up: bool,
    /// State changes since the engine was built — the per-adjacency churn
    /// signal the observability layer aggregates.
    transitions: u64,
}

impl Adjacency {
    fn down() -> Adjacency {
        Adjacency {
            state: AdjState::Down,
            neighbor: None,
            neighbor_addr: None,
            expires: SimTime::ZERO,
            last_hello_tx: None,
            link_up: true,
            transitions: 0,
        }
    }
}

/// Public adjacency snapshot for CLI/tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyInfo {
    pub iface: IfaceId,
    pub state: AdjState,
    pub neighbor: Option<SystemId>,
    pub neighbor_addr: Option<Ipv4Addr>,
}

/// One LSDB row for `show isis database`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsdbEntry {
    pub lsp_id: LspId,
    pub seq: u32,
    pub hostname: Option<String>,
}

/// The IS-IS engine for one router.
pub struct IsisEngine {
    cfg: IsisEngineConfig,
    adjacencies: BTreeMap<IfaceId, Adjacency>,
    lsdb: BTreeMap<LspId, Lsp>,
    own_seq: u32,
    /// Outbound queue. Each entry is one PDU destined for a *group* of
    /// interfaces: floods enqueue a single entry listing every target so the
    /// caller can encode the PDU once and fan the bytes out, instead of
    /// re-encoding per interface.
    out: VecDeque<(Vec<IfaceId>, IsisPdu)>,
    /// SPF result cache, invalidated on any LSDB/adjacency change.
    routes_cache: Option<Vec<RibRoute>>,
    /// Bumped on every cache invalidation; callers can skip re-reading
    /// (and re-installing) routes when the version is unchanged.
    routes_version: u64,
}

impl IsisEngine {
    pub fn new(cfg: IsisEngineConfig) -> IsisEngine {
        let adjacencies = cfg
            .ifaces
            .iter()
            .filter(|i| !i.passive)
            .map(|i| (i.iface.clone(), Adjacency::down()))
            .collect();
        let mut engine = IsisEngine {
            cfg,
            adjacencies,
            lsdb: BTreeMap::new(),
            own_seq: 0,
            out: VecDeque::new(),
            routes_cache: None,
            routes_version: 0,
        };
        engine.regenerate_own_lsp();
        engine
    }

    pub fn system_id(&self) -> SystemId {
        self.cfg.system_id
    }

    fn iface_cfg(&self, iface: &IfaceId) -> Option<&IsisIfaceConfig> {
        self.cfg.ifaces.iter().find(|i| &i.iface == iface)
    }

    /// Marks a link up/down (failure injection). Downing a link tears the
    /// adjacency immediately, as loss-of-light would.
    pub fn set_link(&mut self, iface: &IfaceId, up: bool) {
        if let Some(adj) = self.adjacencies.get_mut(iface) {
            adj.link_up = up;
            if !up && !matches!(adj.state, AdjState::Down) {
                adj.state = AdjState::Down;
                adj.transitions += 1;
                adj.neighbor = None;
                adj.neighbor_addr = None;
                self.regenerate_own_lsp();
            }
        }
    }

    /// Regenerates our own LSP after a topology-affecting change.
    fn regenerate_own_lsp(&mut self) {
        self.own_seq += 1;
        let mut is_neighbors = Vec::new();
        for (iface, adj) in &self.adjacencies {
            if let (AdjState::Up, Some(n)) = (adj.state, adj.neighbor) {
                let metric = self.iface_cfg(iface).map(|c| c.metric).unwrap_or(10);
                is_neighbors.push(IsNeighbor {
                    neighbor: n,
                    pseudonode: 0,
                    metric,
                });
            }
        }
        let ip_reaches: Vec<IpReach> = self
            .cfg
            .ifaces
            .iter()
            .map(|i| IpReach {
                metric: i.metric,
                prefix: i.addr.subnet(),
                down: false,
            })
            .collect();
        let lsp = Lsp {
            lifetime_secs: 1200,
            lsp_id: LspId::of(self.cfg.system_id),
            seq: self.own_seq,
            tlvs: vec![
                Tlv::Area(vec![self.cfg.area.clone()]),
                Tlv::Protocols(vec![NLPID_IPV4]),
                Tlv::Hostname(self.cfg.hostname.clone()),
                Tlv::ExtIsReach(is_neighbors),
                Tlv::ExtIpReach(ip_reaches),
            ],
        };
        self.lsdb.insert(lsp.lsp_id, lsp.clone());
        self.invalidate_routes();
        // Flood to all Up adjacencies.
        let up_ifaces: Vec<IfaceId> = self
            .adjacencies
            .iter()
            .filter(|(_, a)| matches!(a.state, AdjState::Up))
            .map(|(i, _)| i.clone())
            .collect();
        if !up_ifaces.is_empty() {
            self.out.push_back((up_ifaces, IsisPdu::Lsp(lsp)));
        }
    }

    fn build_hello(&self, iface: &IfaceId) -> Option<IsisPdu> {
        let icfg = self.iface_cfg(iface)?;
        let adj = self.adjacencies.get(iface)?;
        let (state, neighbor) = match (adj.state, adj.neighbor) {
            (AdjState::Down, _) => (AdjState::Down, None),
            (s, n) => (s, n),
        };
        Some(IsisPdu::P2pHello(P2pHello {
            circuit_type: 2,
            source: self.cfg.system_id,
            hold_time_secs: (self.cfg.hold_time.as_millis() / 1000) as u16,
            circuit_id: 1,
            tlvs: vec![
                Tlv::Area(vec![self.cfg.area.clone()]),
                Tlv::Protocols(vec![NLPID_IPV4]),
                Tlv::IpIfaceAddr(vec![icfg.addr.addr]),
                Tlv::P2pAdjState { state, neighbor },
            ],
        }))
    }

    /// Feeds a received PDU into the engine.
    pub fn push_pdu(&mut self, now: SimTime, iface: &IfaceId, pdu: IsisPdu) {
        match pdu {
            IsisPdu::P2pHello(hello) => self.on_hello(now, iface, hello),
            IsisPdu::Lsp(lsp) => self.on_lsp(iface, lsp),
            IsisPdu::Csnp(csnp) => self.on_csnp(iface, csnp),
            IsisPdu::Psnp(psnp) => self.on_psnp(iface, psnp),
        }
    }

    fn on_hello(&mut self, now: SimTime, iface: &IfaceId, hello: P2pHello) {
        let Some(adj) = self.adjacencies.get(iface) else {
            return;
        };
        if !adj.link_up {
            return;
        }
        // Area check: mismatched areas never form L2 p2p adjacency here
        // (we run a single-area design, as the paper's topologies do).
        let area_ok = hello.tlvs.iter().any(|t| match t {
            Tlv::Area(areas) => areas.iter().any(|a| a == &self.cfg.area),
            _ => false,
        });
        if !area_ok {
            return;
        }
        let neighbor_addr = hello.tlvs.iter().find_map(|t| match t {
            Tlv::IpIfaceAddr(addrs) => addrs.first().copied(),
            _ => None,
        });
        let they_see_us = matches!(
            hello.adj_state(),
            Some((_, Some(n))) if n == self.cfg.system_id
        );

        let my_id = self.cfg.system_id;
        let adj = self.adjacencies.get_mut(iface).unwrap();
        adj.neighbor = Some(hello.source);
        adj.neighbor_addr = neighbor_addr;
        adj.expires = now + SimDuration::from_secs(hello.hold_time_secs as u64);
        let old_state = adj.state;
        adj.state = if they_see_us {
            AdjState::Up
        } else {
            AdjState::Initializing
        };
        let new_state = adj.state;
        if old_state != new_state {
            adj.transitions += 1;
        }
        let _ = my_id;

        if old_state != new_state {
            // Respond immediately so the three-way handshake completes in
            // one exchange rather than a hello interval.
            if let Some(h) = self.build_hello(iface) {
                self.out.push_back((vec![iface.clone()], h));
            }
            if matches!(new_state, AdjState::Up) {
                self.regenerate_own_lsp();
                // Database sync: full CSNP to the new neighbor.
                let entries = self.csnp_entries();
                self.out.push_back((
                    vec![iface.clone()],
                    IsisPdu::Csnp(Csnp {
                        source: self.cfg.system_id,
                        entries,
                    }),
                ));
            } else if matches!(old_state, AdjState::Up) {
                self.regenerate_own_lsp();
            }
        }
    }

    fn csnp_entries(&self) -> Vec<LspEntry> {
        self.lsdb
            .values()
            .map(|l| LspEntry {
                lifetime: l.lifetime_secs,
                lsp_id: l.lsp_id,
                seq: l.seq,
                checksum: l.checksum(),
            })
            .collect()
    }

    fn on_lsp(&mut self, iface: &IfaceId, lsp: Lsp) {
        let existing_seq = self.lsdb.get(&lsp.lsp_id).map(|l| l.seq);
        if lsp.lsp_id.system == self.cfg.system_id {
            // Someone floods our own LSP back. If theirs is newer (stale
            // restart), outrun it.
            if existing_seq.map(|s| lsp.seq >= s).unwrap_or(true) {
                self.own_seq = lsp.seq;
                self.regenerate_own_lsp();
            }
            return;
        }
        match existing_seq {
            Some(s) if s >= lsp.seq => {
                if s > lsp.seq {
                    // We have newer: send ours back.
                    let ours = self.lsdb.get(&lsp.lsp_id).unwrap().clone();
                    self.out
                        .push_back((vec![iface.clone()], IsisPdu::Lsp(ours)));
                }
                // Equal: ack implicitly via PSNP.
                else {
                    self.out.push_back((
                        vec![iface.clone()],
                        IsisPdu::Psnp(Psnp {
                            source: self.cfg.system_id,
                            entries: vec![LspEntry {
                                lifetime: lsp.lifetime_secs,
                                lsp_id: lsp.lsp_id,
                                seq: lsp.seq,
                                checksum: lsp.checksum(),
                            }],
                        }),
                    ));
                }
            }
            _ => {
                // New or newer: install, ack, flood onward.
                let entry = LspEntry {
                    lifetime: lsp.lifetime_secs,
                    lsp_id: lsp.lsp_id,
                    seq: lsp.seq,
                    checksum: lsp.checksum(),
                };
                self.lsdb.insert(lsp.lsp_id, lsp.clone());
                self.invalidate_routes();
                self.out.push_back((
                    vec![iface.clone()],
                    IsisPdu::Psnp(Psnp {
                        source: self.cfg.system_id,
                        entries: vec![entry],
                    }),
                ));
                let flood_to: Vec<IfaceId> = self
                    .adjacencies
                    .iter()
                    .filter(|(i, a)| *i != iface && matches!(a.state, AdjState::Up))
                    .map(|(i, _)| i.clone())
                    .collect();
                if !flood_to.is_empty() {
                    self.out.push_back((flood_to, IsisPdu::Lsp(lsp)));
                }
            }
        }
    }

    fn on_csnp(&mut self, iface: &IfaceId, csnp: Csnp) {
        let their: BTreeMap<LspId, u32> = csnp.entries.iter().map(|e| (e.lsp_id, e.seq)).collect();
        // Send them anything we have that they are missing or have older.
        for (id, lsp) in &self.lsdb {
            match their.get(id) {
                Some(&their_seq) if their_seq >= lsp.seq => {}
                _ => {
                    self.out
                        .push_back((vec![iface.clone()], IsisPdu::Lsp(lsp.clone())));
                }
            }
        }
        // Request anything they have newer via PSNP.
        let mut requests = Vec::new();
        for e in &csnp.entries {
            let ours = self.lsdb.get(&e.lsp_id).map(|l| l.seq).unwrap_or(0);
            if e.seq > ours {
                requests.push(LspEntry {
                    lifetime: 0,
                    lsp_id: e.lsp_id,
                    seq: 0,
                    checksum: 0,
                });
            }
        }
        if !requests.is_empty() {
            self.out.push_back((
                vec![iface.clone()],
                IsisPdu::Psnp(Psnp {
                    source: self.cfg.system_id,
                    entries: requests,
                }),
            ));
        }
    }

    fn on_psnp(&mut self, iface: &IfaceId, psnp: Psnp) {
        // PSNP entries with seq 0 are requests; entries matching our seq are
        // acks (no retransmission machinery needed in an ordered-delivery
        // emulation, so acks are informational).
        for e in &psnp.entries {
            if let Some(lsp) = self.lsdb.get(&e.lsp_id) {
                if e.seq < lsp.seq {
                    self.out
                        .push_back((vec![iface.clone()], IsisPdu::Lsp(lsp.clone())));
                }
            }
        }
    }

    /// Advances timers; returns PDUs to transmit, each with the group of
    /// interfaces it should go out of (encode once, send to all).
    pub fn poll(&mut self, now: SimTime) -> Vec<(Vec<IfaceId>, IsisPdu)> {
        // Hello transmission.
        let hello_due: Vec<IfaceId> = self
            .adjacencies
            .iter()
            .filter(|(_, a)| {
                a.link_up
                    && a.last_hello_tx
                        .map(|t| now.since(t) >= self.cfg.hello_interval)
                        .unwrap_or(true)
            })
            .map(|(i, _)| i.clone())
            .collect();
        for iface in hello_due {
            if let Some(h) = self.build_hello(&iface) {
                self.out.push_back((vec![iface.clone()], h));
            }
            if let Some(a) = self.adjacencies.get_mut(&iface) {
                a.last_hello_tx = Some(now);
            }
        }

        // Adjacency expiry.
        let mut lost = false;
        for adj in self.adjacencies.values_mut() {
            if !matches!(adj.state, AdjState::Down) && now >= adj.expires {
                adj.state = AdjState::Down;
                adj.transitions += 1;
                adj.neighbor = None;
                adj.neighbor_addr = None;
                lost = true;
            }
        }
        if lost {
            self.regenerate_own_lsp();
        }

        self.out.drain(..).collect()
    }

    /// Earliest future instant at which a timer fires.
    pub fn next_wakeup(&self, now: SimTime) -> SimTime {
        let mut next = now + self.cfg.hello_interval;
        for adj in self.adjacencies.values() {
            if !adj.link_up {
                continue;
            }
            let hello_at = adj
                .last_hello_tx
                .map(|t| t + self.cfg.hello_interval)
                .unwrap_or(now);
            if hello_at < next {
                next = hello_at.max(SimTime(now.0 + 1));
            }
            if !matches!(adj.state, AdjState::Down) && adj.expires > now && adj.expires < next {
                next = adj.expires;
            }
        }
        next
    }

    /// Total adjacency state changes since the engine was built (adjacency
    /// churn, for the observability layer).
    pub fn adjacency_transitions(&self) -> u64 {
        self.adjacencies.values().map(|a| a.transitions).sum()
    }

    /// Current adjacency table.
    pub fn adjacencies(&self) -> Vec<AdjacencyInfo> {
        self.adjacencies
            .iter()
            .map(|(i, a)| AdjacencyInfo {
                iface: i.clone(),
                state: a.state,
                neighbor: a.neighbor,
                neighbor_addr: a.neighbor_addr,
            })
            .collect()
    }

    /// LSDB summary for `show isis database`.
    pub fn lsdb(&self) -> Vec<LsdbEntry> {
        self.lsdb
            .values()
            .map(|l| LsdbEntry {
                lsp_id: l.lsp_id,
                seq: l.seq,
                hostname: l.hostname().map(|s| s.to_string()),
            })
            .collect()
    }

    /// Drops the SPF cache and bumps the version callers key off.
    fn invalidate_routes(&mut self) {
        self.routes_cache = None;
        self.routes_version = self.routes_version.wrapping_add(1);
    }

    /// Monotone stamp of the SPF result: unchanged version means `routes()`
    /// would return exactly what it returned last time, so the caller can
    /// skip the call (and the RIB churn) entirely.
    pub fn routes_version(&self) -> u64 {
        self.routes_version
    }

    /// Runs SPF and returns IS-IS routes for the RIB. Cached until the LSDB
    /// or adjacency set changes.
    pub fn routes(&mut self) -> Vec<RibRoute> {
        if let Some(cached) = &self.routes_cache {
            return cached.clone();
        }
        let routes = self.spf();
        self.routes_cache = Some(routes.clone());
        routes
    }

    /// Dijkstra over the LSDB with a bidirectional connectivity check.
    fn spf(&self) -> Vec<RibRoute> {
        // Adjacency edges from each system, via its LSP.
        let neighbors_of = |sys: SystemId| -> Vec<IsNeighbor> {
            self.lsdb
                .get(&LspId::of(sys))
                .map(|l| l.is_neighbors())
                .unwrap_or_default()
        };
        let bidirectional =
            |a: SystemId, b: SystemId| -> bool { neighbors_of(b).iter().any(|n| n.neighbor == a) };

        // First hops: our Up adjacencies.
        let first_hops: Vec<(SystemId, IfaceId, Ipv4Addr, u32)> = self
            .adjacencies
            .iter()
            .filter_map(
                |(iface, adj)| match (adj.state, adj.neighbor, adj.neighbor_addr) {
                    (AdjState::Up, Some(n), Some(addr)) => {
                        let metric = self.iface_cfg(iface).map(|c| c.metric).unwrap_or(10);
                        Some((n, iface.clone(), addr, metric))
                    }
                    _ => None,
                },
            )
            .collect();

        // Dijkstra: distance + set of equal-cost first hops per system.
        #[derive(PartialEq, Eq)]
        struct QueueItem(u32, SystemId);
        impl Ord for QueueItem {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for QueueItem {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let me = self.cfg.system_id;
        let mut dist: BTreeMap<SystemId, u32> = BTreeMap::new();
        let mut hops: BTreeMap<SystemId, Vec<(IfaceId, Ipv4Addr)>> = BTreeMap::new();
        let mut heap = BinaryHeap::new();

        dist.insert(me, 0);
        heap.push(QueueItem(0, me));
        for (n, iface, addr, metric) in &first_hops {
            if !bidirectional(me, *n) {
                continue;
            }
            let d = *metric;
            let entry = dist.entry(*n).or_insert(u32::MAX);
            if d < *entry {
                *entry = d;
                hops.insert(*n, vec![(iface.clone(), *addr)]);
                heap.push(QueueItem(d, *n));
            } else if d == *entry {
                hops.entry(*n).or_default().push((iface.clone(), *addr));
            }
        }

        while let Some(QueueItem(d, sys)) = heap.pop() {
            if dist.get(&sys).copied().unwrap_or(u32::MAX) < d {
                continue;
            }
            if sys == me {
                continue;
            }
            for edge in neighbors_of(sys) {
                let next = edge.neighbor;
                if next == me || !bidirectional(sys, next) {
                    continue;
                }
                let nd = d.saturating_add(edge.metric);
                let cur = dist.get(&next).copied().unwrap_or(u32::MAX);
                if nd < cur {
                    dist.insert(next, nd);
                    hops.insert(next, hops.get(&sys).cloned().unwrap_or_default());
                    heap.push(QueueItem(nd, next));
                } else if nd == cur && nd != u32::MAX {
                    let via_sys = hops.get(&sys).cloned().unwrap_or_default();
                    let entry = hops.entry(next).or_default();
                    for h in via_sys {
                        if !entry.contains(&h) {
                            entry.push(h);
                        }
                    }
                }
            }
        }

        // Routes: prefixes advertised by reachable systems.
        let my_prefixes: Vec<Prefix> = self.cfg.ifaces.iter().map(|i| i.addr.subnet()).collect();
        let mut best: BTreeMap<Prefix, (u32, Vec<(IfaceId, Ipv4Addr)>)> = BTreeMap::new();
        for (sys, d) in &dist {
            if *sys == me {
                continue;
            }
            let Some(lsp) = self.lsdb.get(&LspId::of(*sys)) else {
                continue;
            };
            let Some(first) = hops.get(sys) else { continue };
            for reach in lsp.ip_reaches() {
                // Skip prefixes we own (connected beats IGP anyway, and
                // shared link subnets would otherwise flap).
                if my_prefixes.contains(&reach.prefix) {
                    continue;
                }
                let total = d.saturating_add(reach.metric);
                match best.get_mut(&reach.prefix) {
                    Some((m, nh)) if *m == total => {
                        for h in first {
                            if !nh.contains(h) {
                                nh.push(h.clone());
                            }
                        }
                    }
                    Some((m, nh)) if *m > total => {
                        *m = total;
                        *nh = first.clone();
                    }
                    Some(_) => {}
                    None => {
                        best.insert(reach.prefix, (total, first.clone()));
                    }
                }
            }
        }

        best.into_iter()
            .map(|(prefix, (metric, nhs))| RibRoute {
                prefix,
                proto: RouteProtocol::Isis,
                admin_distance: mfv_types::AdminDistance::default_for(RouteProtocol::Isis),
                metric,
                next_hops: nhs
                    .into_iter()
                    .map(|(iface, addr)| NextHop::ViaIface(addr, iface))
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: u8) -> SystemId {
        SystemId([0, 0, 0, 0, 0, n])
    }

    fn area() -> Bytes {
        Bytes::from_static(&[0x49, 0x00, 0x01])
    }

    fn engine(n: u8, ifaces: Vec<(&str, &str, u32)>) -> IsisEngine {
        let mut cfg = IsisEngineConfig::new(sys(n), area(), format!("r{n}"));
        for (iface, addr, metric) in ifaces {
            cfg.ifaces.push(IsisIfaceConfig {
                iface: iface.into(),
                addr: addr.parse().unwrap(),
                metric,
                passive: false,
            });
        }
        // A passive loopback, like real deployments.
        cfg.ifaces.push(IsisIfaceConfig {
            iface: "Loopback0".into(),
            addr: format!("2.2.2.{n}/32").parse().unwrap(),
            metric: 10,
            passive: true,
        });
        IsisEngine::new(cfg)
    }

    /// A tiny in-test harness wiring engines over named links.
    struct Net {
        engines: Vec<IsisEngine>,
        /// (engine index, iface) <-> (engine index, iface)
        links: Vec<((usize, IfaceId), (usize, IfaceId))>,
        now: SimTime,
    }

    impl Net {
        fn settle(&mut self) {
            for _ in 0..200 {
                self.now += SimDuration::from_millis(500);
                let mut deliveries: Vec<(usize, IfaceId, IsisPdu)> = Vec::new();
                for (i, e) in self.engines.iter_mut().enumerate() {
                    for (ifaces, pdu) in e.poll(self.now) {
                        for iface in ifaces {
                            if let Some((di, diface)) = peer_of(&self.links, i, &iface) {
                                deliveries.push((di, diface, pdu.clone()));
                            }
                        }
                    }
                }
                if deliveries.is_empty() && self.now.0 > 2000 {
                    // One extra settle round to flush reactions.
                    let mut extra = false;
                    for (i, e) in self.engines.iter_mut().enumerate() {
                        let _ = i;
                        if e.out.is_empty() {
                            continue;
                        }
                        extra = true;
                    }
                    if !extra {
                        break;
                    }
                }
                loop {
                    let mut next: Vec<(usize, IfaceId, IsisPdu)> = Vec::new();
                    for (di, diface, pdu) in deliveries.drain(..) {
                        self.engines[di].push_pdu(self.now, &diface, pdu);
                        for (ifaces, out) in self.engines[di].out.drain(..).collect::<Vec<_>>() {
                            for iface in ifaces {
                                if let Some((ti, tiface)) = peer_of(&self.links, di, &iface) {
                                    next.push((ti, tiface, out.clone()));
                                }
                            }
                        }
                    }
                    if next.is_empty() {
                        break;
                    }
                    deliveries = next;
                }
            }
        }
    }

    fn peer_of(
        links: &[((usize, IfaceId), (usize, IfaceId))],
        node: usize,
        iface: &IfaceId,
    ) -> Option<(usize, IfaceId)> {
        for ((a, ai), (b, bi)) in links {
            if *a == node && ai == iface {
                return Some((*b, bi.clone()));
            }
            if *b == node && bi == iface {
                return Some((*a, ai.clone()));
            }
        }
        None
    }

    fn line3() -> Net {
        // r1 -(eth0/eth0)- r2 -(eth1/eth0)- r3
        let e1 = engine(1, vec![("eth0", "100.64.0.0/31", 10)]);
        let e2 = engine(
            2,
            vec![("eth0", "100.64.0.1/31", 10), ("eth1", "100.64.0.2/31", 10)],
        );
        let e3 = engine(3, vec![("eth0", "100.64.0.3/31", 10)]);
        Net {
            engines: vec![e1, e2, e3],
            links: vec![
                ((0, "eth0".into()), (1, "eth0".into())),
                ((1, "eth1".into()), (2, "eth0".into())),
            ],
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn adjacency_three_way_handshake() {
        let mut net = line3();
        net.settle();
        for e in &net.engines {
            for adj in e.adjacencies() {
                assert_eq!(adj.state, AdjState::Up, "{:?} {:?}", e.cfg.hostname, adj);
                assert!(adj.neighbor_addr.is_some());
            }
        }
    }

    #[test]
    fn lsdb_synchronizes_everywhere() {
        let mut net = line3();
        net.settle();
        for e in &net.engines {
            let db = e.lsdb();
            assert_eq!(db.len(), 3, "{} lsdb: {:?}", e.cfg.hostname, db);
        }
        // Hostnames present.
        let names: Vec<Option<String>> = net.engines[0]
            .lsdb()
            .into_iter()
            .map(|e| e.hostname)
            .collect();
        assert!(names.contains(&Some("r3".to_string())));
    }

    #[test]
    fn spf_computes_transit_routes() {
        let mut net = line3();
        net.settle();
        // r1 must reach r3's loopback via r2.
        let routes = net.engines[0].routes();
        let lo3 = routes
            .iter()
            .find(|r| r.prefix == "2.2.2.3/32".parse().unwrap())
            .expect("route to r3 loopback");
        assert_eq!(lo3.metric, 10 + 10 + 10); // eth0 + eth1 + loopback reach
        match &lo3.next_hops[0] {
            NextHop::ViaIface(addr, iface) => {
                assert_eq!(*addr, "100.64.0.1".parse::<Ipv4Addr>().unwrap());
                assert_eq!(iface, &IfaceId::from("eth0"));
            }
            other => panic!("{other:?}"),
        }
        // Far link subnet also reachable.
        assert!(routes
            .iter()
            .any(|r| r.prefix == "100.64.0.2/31".parse().unwrap()));
        // Our own link subnet is not an IS-IS route.
        assert!(!routes
            .iter()
            .any(|r| r.prefix == "100.64.0.0/31".parse().unwrap()));
    }

    #[test]
    fn link_down_reroutes_or_removes() {
        let mut net = line3();
        net.settle();
        assert!(net.engines[0]
            .routes()
            .iter()
            .any(|r| r.prefix == "2.2.2.3/32".parse().unwrap()));
        // Cut r2–r3.
        net.engines[1].set_link(&"eth1".into(), false);
        net.engines[2].set_link(&"eth0".into(), false);
        net.settle();
        let routes = net.engines[0].routes();
        assert!(
            !routes
                .iter()
                .any(|r| r.prefix == "2.2.2.3/32".parse().unwrap()),
            "r3 loopback must disappear after the cut: {routes:?}"
        );
        // r2 still reachable.
        assert!(routes
            .iter()
            .any(|r| r.prefix == "2.2.2.2/32".parse().unwrap()));
    }

    #[test]
    fn adjacency_expires_without_hellos() {
        let mut net = line3();
        net.settle();
        // Stop delivering: advance r1 far past hold time.
        net.engines[0].poll(SimTime(net.now.0 + 120_000));
        let adjs = net.engines[0].adjacencies();
        assert!(adjs.iter().all(|a| a.state == AdjState::Down));
        assert!(net.engines[0].routes().is_empty());
    }

    #[test]
    fn area_mismatch_blocks_adjacency() {
        let mut cfg1 = IsisEngineConfig::new(sys(1), area(), "r1");
        cfg1.ifaces.push(IsisIfaceConfig {
            iface: "eth0".into(),
            addr: "10.0.0.0/31".parse().unwrap(),
            metric: 10,
            passive: false,
        });
        let mut cfg2 = IsisEngineConfig::new(
            sys(2),
            Bytes::from_static(&[0x49, 0x00, 0x99]), // different area
            "r2",
        );
        cfg2.ifaces.push(IsisIfaceConfig {
            iface: "eth0".into(),
            addr: "10.0.0.1/31".parse().unwrap(),
            metric: 10,
            passive: false,
        });
        let mut net = Net {
            engines: vec![IsisEngine::new(cfg1), IsisEngine::new(cfg2)],
            links: vec![((0, "eth0".into()), (1, "eth0".into()))],
            now: SimTime::ZERO,
        };
        net.settle();
        assert!(net.engines[0]
            .adjacencies()
            .iter()
            .all(|a| a.state == AdjState::Down));
    }

    #[test]
    fn ecmp_on_equal_cost_paths() {
        // Square: r1 - r2 - r4 and r1 - r3 - r4, all metric 10.
        let e1 = engine(
            1,
            vec![("eth0", "10.0.12.0/31", 10), ("eth1", "10.0.13.0/31", 10)],
        );
        let e2 = engine(
            2,
            vec![("eth0", "10.0.12.1/31", 10), ("eth1", "10.0.24.0/31", 10)],
        );
        let e3 = engine(
            3,
            vec![("eth0", "10.0.13.1/31", 10), ("eth1", "10.0.34.0/31", 10)],
        );
        let e4 = engine(
            4,
            vec![("eth0", "10.0.24.1/31", 10), ("eth1", "10.0.34.1/31", 10)],
        );
        let mut net = Net {
            engines: vec![e1, e2, e3, e4],
            links: vec![
                ((0, "eth0".into()), (1, "eth0".into())),
                ((0, "eth1".into()), (2, "eth0".into())),
                ((1, "eth1".into()), (3, "eth0".into())),
                ((2, "eth1".into()), (3, "eth1".into())),
            ],
            now: SimTime::ZERO,
        };
        net.settle();
        let routes = net.engines[0].routes();
        let to4 = routes
            .iter()
            .find(|r| r.prefix == "2.2.2.4/32".parse().unwrap())
            .expect("route to r4");
        assert_eq!(to4.next_hops.len(), 2, "two equal-cost paths: {to4:?}");
    }

    #[test]
    fn passive_interface_announced_but_no_adjacency() {
        let e = engine(1, vec![("eth0", "10.0.0.0/31", 10)]);
        // Loopback0 is passive: no adjacency slot exists for it.
        assert!(e
            .adjacencies()
            .iter()
            .all(|a| a.iface != IfaceId::from("Loopback0")));
        // But its prefix is in our LSP.
        let own = e.lsdb.get(&LspId::of(sys(1))).unwrap();
        assert!(own
            .ip_reaches()
            .iter()
            .any(|r| r.prefix == "2.2.2.1/32".parse().unwrap()));
    }

    #[test]
    fn metric_asymmetry_prefers_cheap_path() {
        // Triangle: r1-r2 (10), r2-r3 (10), r1-r3 (100).
        let e1 = engine(
            1,
            vec![("eth0", "10.0.12.0/31", 10), ("eth1", "10.0.13.0/31", 100)],
        );
        let e2 = engine(
            2,
            vec![("eth0", "10.0.12.1/31", 10), ("eth1", "10.0.23.0/31", 10)],
        );
        let e3 = engine(
            3,
            vec![("eth0", "10.0.13.1/31", 100), ("eth1", "10.0.23.1/31", 10)],
        );
        let mut net = Net {
            engines: vec![e1, e2, e3],
            links: vec![
                ((0, "eth0".into()), (1, "eth0".into())),
                ((0, "eth1".into()), (2, "eth0".into())),
                ((1, "eth1".into()), (2, "eth1".into())),
            ],
            now: SimTime::ZERO,
        };
        net.settle();
        let routes = net.engines[0].routes();
        let to3 = routes
            .iter()
            .find(|r| r.prefix == "2.2.2.3/32".parse().unwrap())
            .unwrap();
        // Via r2: 10 + 10 + 10(loopback metric) = 30; direct: 100 + 10.
        assert_eq!(to3.metric, 30);
        match &to3.next_hops[0] {
            NextHop::ViaIface(addr, _) => {
                assert_eq!(*addr, "10.0.12.1".parse::<Ipv4Addr>().unwrap())
            }
            other => panic!("{other:?}"),
        }
    }
}
