//! Routing protocol engines and the RIB/FIB substrate.
//!
//! Everything here is a poll-based state machine in the smoltcp style: no
//! clocks, no I/O, no threads. The vendor router shells in `mfv-vrouter`
//! own the engines, feed them decoded wire messages, and pump their outputs
//! into the emulated links.
//!
//! - [`rib`] — RIB candidate selection, FIB resolution (recursive next hops)
//! - [`policy`] — route-map evaluation over BGP attributes
//! - [`bgp`] — BGP-4: session FSM, decision process, update generation,
//!   vendor quirks ([`bgp::DecisionQuirks`])
//! - [`isis`] — IS-IS: p2p adjacencies, LSP flooding, SPF

pub mod bgp;
pub mod isis;
pub mod policy;
pub mod rib;

pub use bgp::{BgpEngine, DecisionQuirks, NextHopResolver, SelectionDelta, SessionState};
pub use isis::{IsisEngine, IsisEngineConfig, IsisIfaceConfig};
pub use policy::{BgpAttrs, PolicyResult};
pub use rib::{Fib, FibEntry, FibNextHop, NextHop, Rib, RibRoute};
