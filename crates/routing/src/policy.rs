//! Routing-policy evaluation: route-maps applied to BGP routes at
//! import/export time.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use mfv_config::{MatchClause, PolicyAction, PrefixList, RouteMap, SetClause};
use mfv_types::{AsPath, Community, Origin, Prefix};

/// The mutable attribute set of a BGP route as it moves through policy.
///
/// `Ord` exists so update generation can group prefixes sharing identical
/// attributes into one UPDATE (RFC 4271 packing) via a BTreeMap key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct BgpAttrs {
    pub origin: Origin,
    pub as_path: AsPath,
    /// Protocol next hop (not yet resolved).
    pub next_hop: Ipv4Addr,
    pub med: Option<u32>,
    pub local_pref: Option<u32>,
    pub communities: Vec<Community>,
    /// Unknown transitive attributes carried through (flags, type, value).
    pub foreign_attrs: Vec<(u8, u8, bytes::Bytes)>,
}

impl BgpAttrs {
    /// Attributes of a locally-originated route.
    pub fn originated(next_hop: Ipv4Addr) -> BgpAttrs {
        BgpAttrs {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop,
            med: None,
            local_pref: None,
            communities: Vec::new(),
            foreign_attrs: Vec::new(),
        }
    }
}

/// Outcome of running a policy over a route.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyResult {
    Permit(BgpAttrs),
    Deny,
}

/// Evaluates `route_map` against (prefix, attrs). First matching entry wins;
/// a route that matches no entry is denied (industry-standard implicit deny).
pub fn eval_route_map(
    route_map: &RouteMap,
    prefix_lists: &BTreeMap<String, PrefixList>,
    prefix: &Prefix,
    attrs: &BgpAttrs,
) -> PolicyResult {
    for entry in &route_map.entries {
        let matched = entry.matches.iter().all(|m| match m {
            MatchClause::PrefixList(name) => prefix_lists
                .get(name)
                .map(|pl| pl.permits(prefix))
                .unwrap_or(false),
            MatchClause::Community(c) => attrs.communities.contains(c),
            MatchClause::MaxAsPathLen(n) => attrs.as_path.route_len() <= *n,
        });
        if !matched {
            continue;
        }
        match entry.action {
            PolicyAction::Deny => return PolicyResult::Deny,
            PolicyAction::Permit => {
                let mut out = attrs.clone();
                for set in &entry.sets {
                    apply_set(&mut out, set);
                }
                return PolicyResult::Permit(out);
            }
        }
    }
    PolicyResult::Deny
}

fn apply_set(attrs: &mut BgpAttrs, set: &SetClause) {
    match set {
        SetClause::LocalPref(v) => attrs.local_pref = Some(*v),
        SetClause::Med(v) => attrs.med = Some(*v),
        SetClause::AddCommunities(cs) => {
            for c in cs {
                if !attrs.communities.contains(c) {
                    attrs.communities.push(*c);
                }
            }
            attrs.communities.sort();
        }
        SetClause::SetCommunities(cs) => {
            attrs.communities = cs.clone();
            attrs.communities.sort();
        }
        SetClause::PrependAsPath(asns) => {
            // Prepends apply left-to-right: the first listed AS ends up
            // leftmost on the wire.
            for asn in asns.iter().rev() {
                attrs.as_path = attrs.as_path.prepend(*asn);
            }
        }
        SetClause::NextHop(ip) => attrs.next_hop = *ip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::{PrefixListEntry, RouteMapEntry};
    use mfv_types::AsNum;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn base_attrs() -> BgpAttrs {
        BgpAttrs {
            origin: Origin::Igp,
            as_path: AsPath::sequence([AsNum(65002)]),
            next_hop: Ipv4Addr::new(100, 64, 0, 0),
            med: None,
            local_pref: None,
            communities: vec![Community::new(65002, 1)],
            foreign_attrs: Vec::new(),
        }
    }

    fn prefix_lists() -> BTreeMap<String, PrefixList> {
        let mut m = BTreeMap::new();
        m.insert(
            "CUST".to_string(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    seq: 10,
                    action: PolicyAction::Permit,
                    prefix: pfx("203.0.113.0/24"),
                    ge: None,
                    le: Some(32),
                }],
            },
        );
        m
    }

    #[test]
    fn implicit_deny_when_nothing_matches() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![MatchClause::PrefixList("CUST".into())],
                sets: vec![],
            }],
        };
        let res = eval_route_map(&rm, &prefix_lists(), &pfx("8.8.8.0/24"), &base_attrs());
        assert_eq!(res, PolicyResult::Deny);
    }

    #[test]
    fn match_and_set_local_pref() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![MatchClause::PrefixList("CUST".into())],
                sets: vec![SetClause::LocalPref(200)],
            }],
        };
        match eval_route_map(
            &rm,
            &prefix_lists(),
            &pfx("203.0.113.128/25"),
            &base_attrs(),
        ) {
            PolicyResult::Permit(attrs) => assert_eq!(attrs.local_pref, Some(200)),
            PolicyResult::Deny => panic!("should permit"),
        }
    }

    #[test]
    fn deny_entry_short_circuits() {
        let rm = RouteMap {
            entries: vec![
                RouteMapEntry {
                    seq: 10,
                    action: PolicyAction::Deny,
                    matches: vec![MatchClause::Community(Community::new(65002, 1))],
                    sets: vec![],
                },
                RouteMapEntry {
                    seq: 20,
                    action: PolicyAction::Permit,
                    matches: vec![],
                    sets: vec![],
                },
            ],
        };
        let res = eval_route_map(&rm, &prefix_lists(), &pfx("203.0.113.0/24"), &base_attrs());
        assert_eq!(res, PolicyResult::Deny);
    }

    #[test]
    fn empty_match_list_matches_everything() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![],
                sets: vec![SetClause::Med(77)],
            }],
        };
        match eval_route_map(&rm, &prefix_lists(), &pfx("1.2.3.0/24"), &base_attrs()) {
            PolicyResult::Permit(attrs) => assert_eq!(attrs.med, Some(77)),
            PolicyResult::Deny => panic!("should permit"),
        }
    }

    #[test]
    fn prepend_preserves_wire_order() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![],
                sets: vec![SetClause::PrependAsPath(vec![AsNum(65001), AsNum(65001)])],
            }],
        };
        match eval_route_map(&rm, &prefix_lists(), &pfx("1.2.3.0/24"), &base_attrs()) {
            PolicyResult::Permit(attrs) => {
                assert_eq!(
                    attrs.as_path,
                    AsPath::sequence([AsNum(65001), AsNum(65001), AsNum(65002)])
                );
            }
            PolicyResult::Deny => panic!("should permit"),
        }
    }

    #[test]
    fn additive_communities_dedupe_and_sort() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![],
                sets: vec![SetClause::AddCommunities(vec![
                    Community::new(65002, 1), // duplicate of existing
                    Community::new(65001, 9),
                ])],
            }],
        };
        match eval_route_map(&rm, &prefix_lists(), &pfx("1.2.3.0/24"), &base_attrs()) {
            PolicyResult::Permit(attrs) => {
                assert_eq!(
                    attrs.communities,
                    vec![Community::new(65001, 9), Community::new(65002, 1)]
                );
            }
            PolicyResult::Deny => panic!("should permit"),
        }
    }

    #[test]
    fn all_match_clauses_must_hold() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![
                    MatchClause::PrefixList("CUST".into()),
                    MatchClause::Community(Community::new(9, 9)), // not present
                ],
                sets: vec![],
            }],
        };
        let res = eval_route_map(&rm, &prefix_lists(), &pfx("203.0.113.0/24"), &base_attrs());
        assert_eq!(res, PolicyResult::Deny);
    }

    #[test]
    fn as_path_length_guard() {
        let rm = RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![MatchClause::MaxAsPathLen(1)],
                sets: vec![],
            }],
        };
        assert!(matches!(
            eval_route_map(&rm, &prefix_lists(), &pfx("1.0.0.0/8"), &base_attrs()),
            PolicyResult::Permit(_)
        ));
        let mut long = base_attrs();
        long.as_path = AsPath::sequence([AsNum(1), AsNum(2), AsNum(3)]);
        assert_eq!(
            eval_route_map(&rm, &prefix_lists(), &pfx("1.0.0.0/8"), &long),
            PolicyResult::Deny
        );
    }
}
