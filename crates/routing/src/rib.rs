//! Routing Information Base and Forwarding Information Base.
//!
//! Every protocol engine contributes candidate [`RibRoute`]s; the RIB picks
//! per-prefix winners by administrative distance then metric, and the FIB is
//! computed from the winners with recursive next-hop resolution (a BGP route
//! whose next hop is a loopback resolves through the IGP route covering that
//! loopback).

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use mfv_types::{AdminDistance, IfaceId, Prefix, PrefixTrie, RouteProtocol};

/// How a route reaches its destination.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NextHop {
    /// Destination is on a directly connected subnet of this interface.
    Connected(IfaceId),
    /// Forward via a gateway address (resolved recursively through the RIB).
    Via(Ipv4Addr),
    /// Forward via a gateway out a known interface (IGP routes: the SPF
    /// already knows the egress interface).
    ViaIface(Ipv4Addr, IfaceId),
    /// Deliberate discard (null route).
    Discard,
}

/// A candidate route offered to the RIB by some protocol.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RibRoute {
    pub prefix: Prefix,
    pub proto: RouteProtocol,
    pub admin_distance: AdminDistance,
    /// Intra-protocol metric (IGP cost, BGP MED is *not* this — BGP performs
    /// its own selection and submits only winners).
    pub metric: u32,
    pub next_hops: Vec<NextHop>,
}

impl RibRoute {
    pub fn new(prefix: Prefix, proto: RouteProtocol, metric: u32, nh: NextHop) -> RibRoute {
        RibRoute {
            prefix,
            proto,
            admin_distance: AdminDistance::default_for(proto),
            metric,
            next_hops: vec![nh],
        }
    }
}

/// One resolved forwarding action.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct FibNextHop {
    /// Egress interface.
    pub iface: IfaceId,
    /// Gateway to forward to; `None` when the destination is directly
    /// attached on `iface`.
    pub via: Option<Ipv4Addr>,
}

/// A resolved FIB entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FibEntry {
    pub prefix: Prefix,
    pub proto: RouteProtocol,
    /// One or more (ECMP) next hops, sorted for determinism.
    pub next_hops: Vec<FibNextHop>,
}

/// The full RIB: candidate routes, stored per protocol so that a protocol
/// engine can swap its contribution in O(its own size) rather than O(table)
/// — essential when a small IGP coexists with a million-route BGP table.
#[derive(Clone, Debug, Default)]
pub struct Rib {
    per_proto: BTreeMap<RouteProtocol, BTreeMap<Prefix, RibRoute>>,
}

impl Rib {
    pub fn new() -> Rib {
        Rib::default()
    }

    /// Replaces all routes contributed by `proto` with `routes`.
    ///
    /// Protocol engines recompute their full route set on each convergence
    /// step; swap semantics keep the RIB consistent without per-route
    /// add/remove bookkeeping.
    pub fn set_protocol_routes(&mut self, proto: RouteProtocol, routes: Vec<RibRoute>) {
        let map: BTreeMap<Prefix, RibRoute> = routes
            .into_iter()
            .inspect(|r| debug_assert_eq!(r.proto, proto))
            .map(|r| (r.prefix, r))
            .collect();
        if map.is_empty() {
            self.per_proto.remove(&proto);
        } else {
            self.per_proto.insert(proto, map);
        }
    }

    /// All candidates for a prefix (one per contributing protocol), in
    /// protocol order. Lazy: hot consumers filter or min-reduce without an
    /// intermediate allocation.
    pub fn candidates<'a>(&'a self, prefix: &'a Prefix) -> impl Iterator<Item = &'a RibRoute> {
        self.per_proto.values().filter_map(move |m| m.get(prefix))
    }

    /// The per-prefix winner: lowest admin distance, then lowest metric,
    /// then protocol enum order as a deterministic tiebreak.
    pub fn best(&self, prefix: &Prefix) -> Option<&RibRoute> {
        self.per_proto
            .values()
            .filter_map(|m| m.get(prefix))
            .min_by_key(|r| (r.admin_distance, r.metric, r.proto))
    }

    /// Iterates (prefix, winner) pairs, in prefix order.
    pub fn winners(&self) -> impl Iterator<Item = (&Prefix, &RibRoute)> {
        // Merge the per-protocol maps: collect the prefix universe, then
        // resolve each. The all-prefixes scan is inherent to a full-table
        // walk; incremental paths avoid calling this.
        let mut universe: BTreeSet<&Prefix> = BTreeSet::new();
        for m in self.per_proto.values() {
            universe.extend(m.keys());
        }
        universe
            .into_iter()
            .filter_map(|p| Some((p, self.best(p)?)))
    }

    /// Iterates (prefix, route) pairs contributed by one protocol.
    pub fn protocol_routes(
        &self,
        proto: RouteProtocol,
    ) -> impl Iterator<Item = (&Prefix, &RibRoute)> {
        self.per_proto
            .get(&proto)
            .into_iter()
            .flat_map(|m| m.iter())
    }

    /// Total number of prefixes with at least one candidate.
    pub fn len(&self) -> usize {
        let mut universe: BTreeSet<&Prefix> = BTreeSet::new();
        for m in self.per_proto.values() {
            universe.extend(m.keys());
        }
        universe.len()
    }

    pub fn is_empty(&self) -> bool {
        self.per_proto.is_empty()
    }

    /// Resolves the RIB into a FIB.
    ///
    /// `Via` next hops resolve recursively (up to a depth bound) through the
    /// winners; routes whose next hop cannot be resolved are dropped — a
    /// route to an unreachable gateway must not be installed.
    pub fn to_fib(&self) -> Fib {
        // Build a winner trie once for recursive resolution.
        let mut winner_trie: PrefixTrie<&RibRoute> = PrefixTrie::new();
        for (p, r) in self.winners() {
            winner_trie.insert(*p, r);
        }

        let mut fib = Fib::new();
        for (prefix, route) in self.winners() {
            let (resolved, discard) = resolve_next_hops(&winner_trie, &route.next_hops);
            if !resolved.is_empty() {
                fib.insert(FibEntry {
                    prefix: *prefix,
                    proto: route.proto,
                    next_hops: resolved,
                });
            } else if discard {
                fib.insert(FibEntry {
                    prefix: *prefix,
                    proto: route.proto,
                    next_hops: Vec::new(),
                });
            }
            // else: unresolvable — not installed.
        }
        fib
    }
}

/// Resolves a route's next hops against a winner trie, returning the
/// concrete (iface, via) pairs plus whether a discard action was present.
/// Shared by [`Rib::to_fib`] and incremental FIB patching in router shells.
pub fn resolve_next_hops(
    winners: &PrefixTrie<&RibRoute>,
    next_hops: &[NextHop],
) -> (Vec<FibNextHop>, bool) {
    let mut resolved: Vec<FibNextHop> = Vec::new();
    let mut discard = false;
    for nh in next_hops {
        match nh {
            NextHop::Connected(iface) => {
                resolved.push(FibNextHop {
                    iface: iface.clone(),
                    via: None,
                });
            }
            NextHop::ViaIface(gw, iface) => {
                resolved.push(FibNextHop {
                    iface: iface.clone(),
                    via: Some(*gw),
                });
            }
            NextHop::Via(gw) => {
                resolved.extend(resolve_via(winners, *gw, 0));
            }
            NextHop::Discard => {
                discard = true;
            }
        }
    }
    resolved.sort();
    resolved.dedup();
    (resolved, discard)
}

/// Recursively resolves a gateway address to concrete (iface, via) pairs.
fn resolve_via(winners: &PrefixTrie<&RibRoute>, gw: Ipv4Addr, depth: usize) -> Vec<FibNextHop> {
    // Recursion bound: real implementations bound recursive resolution; 8
    // levels is far beyond any sane design.
    if depth > 8 {
        return Vec::new();
    }
    let Some((covering, route)) = winners.lookup(gw) else {
        return Vec::new();
    };
    // A default route cannot resolve a BGP next hop (standard behaviour:
    // next-hop resolution ignores the default route).
    if covering.is_default() && depth == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for nh in &route.next_hops {
        match nh {
            NextHop::Connected(iface) => {
                // Gateway is on a connected subnet: forward directly to it.
                out.push(FibNextHop {
                    iface: iface.clone(),
                    via: Some(gw),
                });
            }
            NextHop::ViaIface(via, iface) => {
                out.push(FibNextHop {
                    iface: iface.clone(),
                    via: Some(*via),
                });
            }
            NextHop::Via(next_gw) => {
                out.extend(resolve_via(winners, *next_gw, depth + 1));
            }
            NextHop::Discard => {}
        }
    }
    out
}

/// The FIB: longest-prefix-match forwarding state.
#[derive(Clone, Debug, Default)]
pub struct Fib {
    trie: PrefixTrie<FibEntry>,
}

impl Fib {
    pub fn new() -> Fib {
        Fib {
            trie: PrefixTrie::new(),
        }
    }

    pub fn insert(&mut self, entry: FibEntry) {
        self.trie.insert(entry.prefix, entry);
    }

    /// Removes the entry at exactly `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<FibEntry> {
        self.trie.remove(prefix)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&FibEntry> {
        self.trie.lookup(dst).map(|(_, e)| e)
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&FibEntry> {
        self.trie.get(prefix)
    }

    pub fn len(&self) -> usize {
        self.trie.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trie.len() == 0
    }

    /// All entries in prefix order. Lazy: callers iterating tables at
    /// production scale (AFT extraction, class computation) pay no
    /// per-snapshot `Vec<&_>` allocation.
    pub fn entries(&self) -> impl Iterator<Item = &FibEntry> {
        self.trie.iter().map(|(_, e)| e)
    }

    /// Structural equality check used by the convergence detector: two FIBs
    /// are equal when they hold identical entries.
    pub fn same_as(&self, other: &Fib) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.trie
            .iter()
            .zip(other.trie.iter())
            .all(|((pa, ea), (pb, eb))| pa == pb && ea == eb)
    }

    /// A compact digest of the FIB used for cheap convergence comparison.
    pub fn digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for (p, e) in self.trie.iter() {
            p.hash(&mut h);
            e.proto.hash(&mut h);
            e.next_hops.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn connected(prefix: &str, iface: &str) -> RibRoute {
        RibRoute::new(
            p(prefix),
            RouteProtocol::Connected,
            0,
            NextHop::Connected(iface.into()),
        )
    }

    #[test]
    fn admin_distance_selects_winner() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![RibRoute::new(
                p("10.0.0.0/8"),
                RouteProtocol::Isis,
                20,
                NextHop::ViaIface(ip("1.1.1.2"), "eth0".into()),
            )],
        );
        rib.set_protocol_routes(
            RouteProtocol::Static,
            vec![RibRoute::new(
                p("10.0.0.0/8"),
                RouteProtocol::Static,
                0,
                NextHop::Discard,
            )],
        );
        assert_eq!(
            rib.best(&p("10.0.0.0/8")).unwrap().proto,
            RouteProtocol::Static
        );
    }

    #[test]
    fn metric_breaks_ties_within_distance() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![
                RibRoute::new(
                    p("10.0.0.0/8"),
                    RouteProtocol::Isis,
                    30,
                    NextHop::ViaIface(ip("1.1.1.2"), "eth0".into()),
                ),
                RibRoute::new(
                    p("10.0.0.0/8"),
                    RouteProtocol::Isis,
                    10,
                    NextHop::ViaIface(ip("1.1.2.2"), "eth1".into()),
                ),
            ],
        );
        let best = rib.best(&p("10.0.0.0/8")).unwrap();
        assert_eq!(best.metric, 10);
    }

    #[test]
    fn set_protocol_routes_replaces_previous() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![RibRoute::new(
                p("10.0.0.0/8"),
                RouteProtocol::Isis,
                10,
                NextHop::Discard,
            )],
        );
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![RibRoute::new(
                p("20.0.0.0/8"),
                RouteProtocol::Isis,
                10,
                NextHop::Discard,
            )],
        );
        assert!(rib.best(&p("10.0.0.0/8")).is_none());
        assert!(rib.best(&p("20.0.0.0/8")).is_some());
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn fib_resolves_connected_and_iface_routes() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Connected,
            vec![connected("100.64.0.0/31", "eth0")],
        );
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![RibRoute::new(
                p("2.2.2.2/32"),
                RouteProtocol::Isis,
                10,
                NextHop::ViaIface(ip("100.64.0.1"), "eth0".into()),
            )],
        );
        let fib = rib.to_fib();
        assert_eq!(fib.len(), 2);
        let e = fib.lookup(ip("2.2.2.2")).unwrap();
        assert_eq!(
            e.next_hops[0],
            FibNextHop {
                iface: "eth0".into(),
                via: Some(ip("100.64.0.1"))
            }
        );
        let c = fib.lookup(ip("100.64.0.1")).unwrap();
        assert_eq!(
            c.next_hops[0],
            FibNextHop {
                iface: "eth0".into(),
                via: None
            }
        );
    }

    #[test]
    fn fib_recursive_resolution_of_bgp_next_hop() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Connected,
            vec![connected("100.64.0.0/31", "eth0")],
        );
        // IGP knows the remote loopback.
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![RibRoute::new(
                p("2.2.2.5/32"),
                RouteProtocol::Isis,
                10,
                NextHop::ViaIface(ip("100.64.0.1"), "eth0".into()),
            )],
        );
        // BGP route via the loopback (iBGP next-hop-self).
        rib.set_protocol_routes(
            RouteProtocol::IbgpLearned,
            vec![RibRoute::new(
                p("203.0.113.0/24"),
                RouteProtocol::IbgpLearned,
                0,
                NextHop::Via(ip("2.2.2.5")),
            )],
        );
        let fib = rib.to_fib();
        let e = fib.lookup(ip("203.0.113.7")).unwrap();
        assert_eq!(e.proto, RouteProtocol::IbgpLearned);
        assert_eq!(
            e.next_hops,
            vec![FibNextHop {
                iface: "eth0".into(),
                via: Some(ip("100.64.0.1"))
            }]
        );
    }

    #[test]
    fn unresolvable_next_hop_not_installed() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::EbgpLearned,
            vec![RibRoute::new(
                p("203.0.113.0/24"),
                RouteProtocol::EbgpLearned,
                0,
                NextHop::Via(ip("99.99.99.99")),
            )],
        );
        let fib = rib.to_fib();
        assert!(fib.lookup(ip("203.0.113.1")).is_none());
    }

    #[test]
    fn default_route_does_not_resolve_next_hops() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Connected,
            vec![connected("100.64.0.0/31", "eth0")],
        );
        rib.set_protocol_routes(
            RouteProtocol::Static,
            vec![RibRoute::new(
                p("0.0.0.0/0"),
                RouteProtocol::Static,
                0,
                NextHop::ViaIface(ip("100.64.0.1"), "eth0".into()),
            )],
        );
        rib.set_protocol_routes(
            RouteProtocol::EbgpLearned,
            vec![RibRoute::new(
                p("203.0.113.0/24"),
                RouteProtocol::EbgpLearned,
                0,
                NextHop::Via(ip("8.8.8.8")), // only covered by 0/0
            )],
        );
        let fib = rib.to_fib();
        // The /24 must not be installed (its next hop only resolves via the
        // default route); packets to it fall through to the default.
        assert!(fib.get(&p("203.0.113.0/24")).is_none());
        assert_eq!(
            fib.lookup(ip("203.0.113.1")).unwrap().prefix,
            p("0.0.0.0/0")
        );
        // The default route itself is still installed.
        assert!(fib.lookup(ip("8.8.8.8")).is_some());
    }

    #[test]
    fn discard_route_installs_empty_next_hops() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Static,
            vec![RibRoute::new(
                p("192.0.2.0/24"),
                RouteProtocol::Static,
                0,
                NextHop::Discard,
            )],
        );
        let fib = rib.to_fib();
        let e = fib.lookup(ip("192.0.2.1")).unwrap();
        assert!(e.next_hops.is_empty());
    }

    #[test]
    fn ecmp_next_hops_are_sorted_and_deduped() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Isis,
            vec![RibRoute {
                prefix: p("10.0.0.0/8"),
                proto: RouteProtocol::Isis,
                admin_distance: AdminDistance::default_for(RouteProtocol::Isis),
                metric: 10,
                next_hops: vec![
                    NextHop::ViaIface(ip("1.0.0.2"), "eth1".into()),
                    NextHop::ViaIface(ip("1.0.0.1"), "eth0".into()),
                    NextHop::ViaIface(ip("1.0.0.2"), "eth1".into()),
                ],
            }],
        );
        let fib = rib.to_fib();
        let e = fib.lookup(ip("10.1.1.1")).unwrap();
        assert_eq!(e.next_hops.len(), 2);
        assert!(e.next_hops[0] < e.next_hops[1]);
    }

    #[test]
    fn digest_changes_with_content() {
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Connected,
            vec![connected("10.0.0.0/24", "eth0")],
        );
        let f1 = rib.to_fib();
        rib.set_protocol_routes(
            RouteProtocol::Connected,
            vec![
                connected("10.0.0.0/24", "eth0"),
                connected("10.0.1.0/24", "eth1"),
            ],
        );
        let f2 = rib.to_fib();
        assert_ne!(f1.digest(), f2.digest());
        assert!(!f1.same_as(&f2));
        assert!(f1.same_as(&f1.clone()));
    }

    #[test]
    fn resolution_loop_terminates() {
        // Two static routes resolving through each other must not hang.
        let mut rib = Rib::new();
        rib.set_protocol_routes(
            RouteProtocol::Static,
            vec![
                RibRoute::new(
                    p("1.0.0.0/8"),
                    RouteProtocol::Static,
                    0,
                    NextHop::Via(ip("2.0.0.1")),
                ),
                RibRoute::new(
                    p("2.0.0.0/8"),
                    RouteProtocol::Static,
                    0,
                    NextHop::Via(ip("1.0.0.1")),
                ),
            ],
        );
        let fib = rib.to_fib();
        assert!(fib.lookup(ip("1.2.3.4")).is_none());
        assert!(fib.lookup(ip("2.3.4.5")).is_none());
    }
}
