//! Vendor profiles: the behavioural differences between the two emulated
//! router OSes.
//!
//! The paper's core claim is that only *real implementations* expose
//! vendor-specific behaviour — default timers, decision-process quirks, and
//! outright bugs. A [`VendorProfile`] captures those per-vendor parameters;
//! [`VendorBugs`] additionally models injectable implementation defects used
//! by the experiments (all default-off).

use mfv_config::Vendor;
use mfv_routing::DecisionQuirks;
use mfv_types::SimDuration;

/// Injectable vendor implementation bugs. Each reproduces a bug class the
/// paper reports observing in production (§2 "Single separate
/// implementation").
#[derive(Clone, Copy, Debug, Default)]
pub struct VendorBugs {
    /// The routing process crashes while parsing an UPDATE that carries an
    /// unknown attribute with this type code — "an unusual but valid BGP
    /// advertisement caused another vendor's routing process to crash
    /// during parsing, leading to ... a partial network outage."
    pub crash_on_unknown_attr: Option<u8>,
    /// This OS attaches an unusual (but RFC-valid) optional-transitive
    /// attribute of the given type to every UPDATE it sends — the other half
    /// of the interplay bug above.
    pub emit_unusual_attr: Option<u8>,
    /// "A new software version ... introduced an incorrect route metric
    /// selection in iBGP": invert the IGP-metric comparison for iBGP paths.
    pub ibgp_metric_bug: bool,
}

/// Per-vendor behaviour profile.
#[derive(Clone, Debug)]
pub struct VendorProfile {
    pub vendor: Vendor,
    /// Software version string reported by the CLI.
    pub sw_version: String,
    /// Decision-process tie-break behaviour.
    pub quirks: DecisionQuirks,
    /// Container boot time (KNE-style pod startup); per-vendor.
    pub boot_time: SimDuration,
    /// Crash-restart delay when the routing process dies.
    pub restart_delay: SimDuration,
    /// RSVP-TE hello default, ms — vendors disagree, which the paper cites
    /// as a cross-vendor reconvergence hazard.
    pub rsvp_hello_default_ms: u32,
    pub bugs: VendorBugs,
    /// Emulated resource request per instance (KNE pod sizing): vCPU
    /// thousandths and MiB of RAM.
    pub cpu_millis: u32,
    pub mem_mib: u32,
}

impl VendorProfile {
    /// The EOS-like container ("cEOS"): 0.5 vCPU + 1 GiB as reported in §5.
    pub fn ceos() -> VendorProfile {
        VendorProfile {
            vendor: Vendor::Ceos,
            sw_version: "4.34.0F".to_string(),
            quirks: DecisionQuirks::default(),
            boot_time: SimDuration::from_secs(110),
            restart_delay: SimDuration::from_secs(45),
            rsvp_hello_default_ms: 9_000,
            bugs: VendorBugs::default(),
            cpu_millis: 500,
            mem_mib: 1024,
        }
    }

    /// The Junos-like container ("vJunos"): heavier image, slower boot.
    pub fn vjunos() -> VendorProfile {
        VendorProfile {
            vendor: Vendor::Vjunos,
            sw_version: "23.2R1".to_string(),
            quirks: DecisionQuirks::default(),
            boot_time: SimDuration::from_secs(170),
            restart_delay: SimDuration::from_secs(60),
            rsvp_hello_default_ms: 3_000,
            bugs: VendorBugs::default(),
            cpu_millis: 1000,
            mem_mib: 2048,
        }
    }

    /// Default profile for a vendor.
    pub fn for_vendor(vendor: Vendor) -> VendorProfile {
        match vendor {
            Vendor::Ceos => VendorProfile::ceos(),
            Vendor::Vjunos => VendorProfile::vjunos(),
        }
    }

    /// Applies the bug set, returning the modified profile (builder-style).
    pub fn with_bugs(mut self, bugs: VendorBugs) -> VendorProfile {
        self.bugs = bugs;
        if bugs.ibgp_metric_bug {
            self.quirks.ibgp_igp_metric_inverted = true;
            // A bug arrives with a software upgrade.
            self.sw_version.push_str("-hotfix2");
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceos_matches_paper_resource_figures() {
        let p = VendorProfile::ceos();
        assert_eq!(p.cpu_millis, 500);
        assert_eq!(p.mem_mib, 1024);
    }

    #[test]
    fn vendors_differ_in_rsvp_defaults() {
        assert_ne!(
            VendorProfile::ceos().rsvp_hello_default_ms,
            VendorProfile::vjunos().rsvp_hello_default_ms
        );
    }

    #[test]
    fn bug_builder_wires_quirks() {
        let p = VendorProfile::ceos().with_bugs(VendorBugs {
            ibgp_metric_bug: true,
            ..Default::default()
        });
        assert!(p.quirks.ibgp_igp_metric_inverted);
        assert!(p.sw_version.contains("hotfix"));
    }

    #[test]
    fn for_vendor_dispatch() {
        assert_eq!(VendorProfile::for_vendor(Vendor::Ceos).vendor, Vendor::Ceos);
        assert_eq!(
            VendorProfile::for_vendor(Vendor::Vjunos).vendor,
            Vendor::Vjunos
        );
    }
}
