//! The virtual router: a vendor OS instance wired from a parsed
//! [`DeviceConfig`], composing the protocol engines into a full control
//! plane with a RIB, FIB, and vendor-specific byte-level behaviour.
//!
//! This is the moral equivalent of the vendor container image in the paper's
//! KNE deployment: the unit the emulator boots per topology node.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use bytes::Bytes;

use mfv_config::{DeviceConfig, Redistribute};
use mfv_routing::bgp::{BgpEngine, NextHopResolver};
use mfv_routing::isis::{IsisEngine, IsisEngineConfig, IsisIfaceConfig};
use mfv_routing::policy::{eval_route_map, BgpAttrs, PolicyResult};
use mfv_routing::rib::{Fib, NextHop, Rib, RibRoute};
use mfv_types::{IfaceId, NodeId, Prefix, PrefixTrie, RouteProtocol, RouterId, SimTime};
use mfv_wire::bgp::{BgpMsg, PathAttr};
use mfv_wire::isis::{net_area_bytes, net_system_id, IsisPdu, SystemId};

use crate::profile::VendorProfile;

/// Output events produced by [`VirtualRouter::poll`].
#[derive(Clone, Debug)]
pub enum RouterEvent {
    /// A link-local IS-IS PDU to place on the wire of `iface`.
    IsisFrame { iface: IfaceId, payload: Bytes },
    /// A BGP message addressed to a (possibly multi-hop) peer.
    BgpSegment {
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Bytes,
    },
    /// The routing process died (vendor bug). The emulator restarts the
    /// router after its profile's restart delay.
    Crashed { reason: String },
}

/// Operational state of the instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterState {
    Running,
    /// The routing process crashed at the contained time.
    Crashed(SimTime),
}

/// A full virtual router instance.
pub struct VirtualRouter {
    pub name: NodeId,
    profile: VendorProfile,
    config: DeviceConfig,
    state: RouterState,
    isis: Option<IsisEngine>,
    bgp: Option<BgpEngine>,
    rib: Rib,
    fib: Fib,
    /// Physical link state per interface (loopbacks are always up).
    link_up: BTreeMap<IfaceId, bool>,
    /// Monotone counter bumped whenever the FIB content changes; the
    /// emulator's convergence detector watches it.
    fib_version: u64,
    last_fib_digest: u64,
    /// Prefixes whose FIB entries changed since the last
    /// [`take_changed_prefixes`](Self::take_changed_prefixes) — the
    /// emulator's convergence watchdog uses these to tell oscillation
    /// (the same prefixes churning) from slow convergence.
    changed_prefixes: BTreeSet<Prefix>,
    pending_crash: Option<String>,
    /// Events queued outside poll (e.g. session teardowns on config push).
    pending_out: Vec<RouterEvent>,
    /// Digest of the IGP view last handed to BGP next-hop resolution; a
    /// change forces a full BGP decision recomputation.
    last_igp_digest: u64,
    /// True when connected/static route sources may have changed (link
    /// events, config pushes, restarts); cleared after the RIB resync.
    rib_sources_dirty: bool,
    /// IS-IS SPF version last installed in the RIB; unchanged version means
    /// the IS-IS contribution is already current.
    last_isis_version: Option<u64>,
    /// IGP next-hop resolver reused across polls while the IGP is stable.
    cached_resolver: Option<IgpResolver>,
    /// Count of messages that failed vendor decoding (dropped).
    pub decode_errors: u64,
    /// Count of outbound messages that failed encoding (dropped rather
    /// than silently truncated — see `mfv_wire::EncodeError`).
    pub encode_errors: u64,
    /// RIB resyncs from the connected/static/IS-IS sources (the `igp_dirty`
    /// path in `poll`).
    pub rib_resyncs: u64,
    /// Full O(table) FIB rebuilds.
    pub full_fib_refreshes: u64,
    /// Incremental FIB patches (changed-prefix path).
    pub fib_patches: u64,
}

/// IGP view for BGP next-hop resolution: winners of connected/static/IS-IS.
struct IgpResolver {
    trie: PrefixTrie<u32>,
}

impl NextHopResolver for IgpResolver {
    fn igp_metric(&self, ip: Ipv4Addr) -> Option<u32> {
        let (covering, metric) = self.trie.lookup(ip)?;
        if covering.is_default() {
            return None;
        }
        Some(*metric)
    }
}

impl VirtualRouter {
    /// Boots a router from config. The emulator accounts for container boot
    /// *time* separately (pod scheduling); once constructed, the control
    /// plane is live.
    pub fn new(name: NodeId, profile: VendorProfile, config: DeviceConfig) -> VirtualRouter {
        let mut router = VirtualRouter {
            name,
            profile,
            config,
            state: RouterState::Running,
            isis: None,
            bgp: None,
            rib: Rib::new(),
            fib: Fib::new(),
            link_up: BTreeMap::new(),
            fib_version: 0,
            last_fib_digest: 0,
            changed_prefixes: BTreeSet::new(),
            pending_crash: None,
            pending_out: Vec::new(),
            last_igp_digest: 0,
            rib_sources_dirty: true,
            last_isis_version: None,
            cached_resolver: None,
            decode_errors: 0,
            encode_errors: 0,
            rib_resyncs: 0,
            full_fib_refreshes: 0,
            fib_patches: 0,
        };
        for iface in &router.config.interfaces {
            router.link_up.insert(iface.name.clone(), true);
        }
        router.build_engines();
        router
    }

    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    pub fn state(&self) -> RouterState {
        self.state
    }

    pub fn is_running(&self) -> bool {
        matches!(self.state, RouterState::Running)
    }

    /// The router's current FIB (empty while crashed).
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// Monotone FIB change counter.
    pub fn fib_version(&self) -> u64 {
        self.fib_version
    }

    /// Drains the set of prefixes whose FIB entries changed since the last
    /// call. Callers that only watch [`fib_version`](Self::fib_version) can
    /// ignore this; the emulator's watchdog drains it every poll.
    pub fn take_changed_prefixes(&mut self) -> BTreeSet<Prefix> {
        std::mem::take(&mut self.changed_prefixes)
    }

    /// Kills the routing process (fault injection): takes effect on the
    /// next poll, exactly as a vendor-bug crash does — the FIB is flushed
    /// and a [`RouterEvent::Crashed`] is emitted for the watchdog.
    pub fn inject_crash(&mut self, reason: impl Into<String>) {
        if self.is_running() {
            self.pending_crash = Some(reason.into());
        }
    }

    /// All L3 addresses owned by this router.
    pub fn addresses(&self) -> BTreeSet<Ipv4Addr> {
        self.config
            .interfaces
            .iter()
            .filter(|i| i.is_l3())
            .filter_map(|i| i.addr.map(|a| a.addr))
            .collect()
    }

    /// Loopback address (management identity).
    pub fn loopback(&self) -> Option<Ipv4Addr> {
        self.config.loopback_addr()
    }

    /// Applies a new configuration (config push), rebuilding the control
    /// plane — equivalent to a config replace + process restart in the lab.
    pub fn apply_config(&mut self, config: DeviceConfig) {
        // Tear down existing BGP sessions gracefully (Cease/administrative
        // reset) — a real config replace restarts the speaker, and peers see
        // the TCP connection close rather than waiting out their hold timer.
        let mut teardowns = Vec::new();
        if let Some(bgp) = &self.bgp {
            for s in bgp.summaries() {
                if s.state == mfv_routing::SessionState::Idle {
                    continue;
                }
                let src = self.session_local_addr_for(s.peer);
                let msg = BgpMsg::Notification(mfv_wire::bgp::NotificationMsg {
                    code: 6,    // Cease
                    subcode: 4, // administrative reset
                    data: Bytes::new(),
                });
                teardowns.push((src, s.peer, msg));
            }
        }
        for (src, peer, msg) in teardowns {
            match msg.encode() {
                Ok(payload) => self.pending_out.push(RouterEvent::BgpSegment {
                    src,
                    dst: peer,
                    payload,
                }),
                // An unencodable teardown is dropped; the peer's hold
                // timer tears the session down instead.
                Err(_) => self.encode_errors += 1,
            }
        }
        self.config = config;
        self.link_up = self
            .config
            .interfaces
            .iter()
            .map(|i| {
                let prev = self.link_up.get(&i.name).copied().unwrap_or(true);
                (i.name.clone(), prev)
            })
            .collect();
        self.build_engines();
        self.rib = Rib::new();
        self.fib = Fib::new();
        self.mark_rib_sources_dirty();
    }

    /// Invalidates everything derived from the route sources: the next poll
    /// resyncs the RIB and rebuilds the cached IGP resolver.
    fn mark_rib_sources_dirty(&mut self) {
        self.rib_sources_dirty = true;
        self.last_isis_version = None;
        self.cached_resolver = None;
    }

    /// (Re)constructs protocol engines from the current config.
    fn build_engines(&mut self) {
        // IS-IS.
        self.isis = self.config.isis.as_ref().and_then(|isis_cfg| {
            if !isis_cfg.af_ipv4 || isis_cfg.net.is_empty() {
                return None;
            }
            let system_id = net_system_id(&isis_cfg.net).unwrap_or_else(|| {
                SystemId::from_ip(self.loopback().unwrap_or(Ipv4Addr::UNSPECIFIED))
            });
            let area = net_area_bytes(&isis_cfg.net)?;
            let mut cfg = IsisEngineConfig::new(system_id, area, self.config.hostname.clone());
            for iface in &self.config.interfaces {
                let Some(ii) = &iface.isis else { continue };
                if ii.instance != isis_cfg.instance {
                    continue;
                }
                if !iface.is_l3() {
                    continue;
                }
                let Some(addr) = iface.addr else { continue };
                cfg.ifaces.push(IsisIfaceConfig {
                    iface: iface.name.clone(),
                    addr,
                    metric: ii.metric,
                    passive: ii.passive || iface.name.is_loopback(),
                });
            }
            if cfg.ifaces.is_empty() {
                return None;
            }
            Some(IsisEngine::new(cfg))
        });

        // BGP.
        self.bgp = self.config.bgp.as_ref().map(|bgp_cfg| {
            let router_id = self
                .config
                .effective_router_id()
                .unwrap_or(RouterId(Ipv4Addr::UNSPECIFIED));
            let mut local_addrs = BTreeMap::new();
            for n in &bgp_cfg.neighbors {
                local_addrs.insert(n.peer, self.session_local_addr(n.peer, &n.update_source));
            }
            BgpEngine::new(
                bgp_cfg,
                router_id,
                &local_addrs,
                self.config.route_maps.clone(),
                self.config.prefix_lists.clone(),
                self.profile.quirks,
            )
        });
    }

    /// Our source address for a session to `peer`.
    fn session_local_addr(&self, peer: Ipv4Addr, update_source: &Option<IfaceId>) -> Ipv4Addr {
        if let Some(src) = update_source {
            if let Some(iface) = self.config.interface(src) {
                if let Some(a) = iface.addr {
                    return a.addr;
                }
            }
        }
        // Directly-connected peer: use our address on the shared subnet.
        for iface in &self.config.interfaces {
            if !iface.is_l3() {
                continue;
            }
            if let Some(a) = iface.addr {
                if a.subnet().contains(peer) {
                    return a.addr;
                }
            }
        }
        self.loopback().unwrap_or(Ipv4Addr::UNSPECIFIED)
    }

    /// Marks a physical link up/down (failure injection / topology events).
    pub fn set_link(&mut self, iface: &IfaceId, up: bool) {
        self.link_up.insert(iface.clone(), up);
        self.mark_rib_sources_dirty();
        if let Some(isis) = &mut self.isis {
            isis.set_link(iface, up);
        }
    }

    /// Administratively shuts a BGP session (config-push scenario E1 uses a
    /// config change instead, but tests use this directly).
    pub fn shutdown_bgp_session(&mut self, peer: Ipv4Addr, now: SimTime) {
        if let Some(bgp) = &mut self.bgp {
            bgp.shutdown_session(peer, now);
        }
    }

    /// Ingests an IS-IS frame from a link.
    pub fn push_isis(&mut self, now: SimTime, iface: &IfaceId, payload: Bytes) {
        if !self.is_running() || !self.link_up.get(iface).copied().unwrap_or(false) {
            return;
        }
        let mut buf = payload;
        match IsisPdu::decode(&mut buf) {
            Ok(pdu) => {
                if let Some(isis) = &mut self.isis {
                    isis.push_pdu(now, iface, pdu);
                }
            }
            Err(_) => {
                self.decode_errors += 1;
            }
        }
    }

    /// Ingests a BGP segment addressed to one of our session endpoints.
    pub fn push_bgp(&mut self, now: SimTime, src: Ipv4Addr, dst: Ipv4Addr, payload: Bytes) {
        if !self.is_running() {
            return;
        }
        if !self.addresses().contains(&dst) {
            return; // not ours — emulator misdelivery or stale address
        }
        let mut buf = payload;
        let msg = match BgpMsg::decode(&mut buf) {
            Ok(m) => m,
            Err(_) => {
                self.decode_errors += 1;
                return;
            }
        };
        // VENDOR BUG (paper §2): this OS's parser dies on a particular
        // unusual-but-valid transitive attribute.
        if let Some(fatal_type) = self.profile.bugs.crash_on_unknown_attr {
            if let BgpMsg::Update(u) = &msg {
                let poisoned = u.attrs.iter().any(|a| {
                    matches!(a, PathAttr::Unknown { type_code, .. } if *type_code == fatal_type)
                });
                if poisoned {
                    self.pending_crash = Some(format!(
                        "routing process segfault parsing path attribute {fatal_type}"
                    ));
                    return;
                }
            }
        }
        if let Some(bgp) = &mut self.bgp {
            bgp.push_msg(now, src, msg);
        }
    }

    const IGP_PROTOS: [RouteProtocol; 3] = [
        RouteProtocol::Connected,
        RouteProtocol::Static,
        RouteProtocol::Isis,
    ];

    /// Digest of the IGP routes (connected/static/IS-IS): BGP next-hop
    /// resolution depends on exactly this state. Walks only the (small) IGP
    /// protocol maps, never the BGP table.
    fn igp_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for proto in Self::IGP_PROTOS {
            for (prefix, route) in self.rib.protocol_routes(proto) {
                prefix.hash(&mut h);
                route.proto.hash(&mut h);
                route.metric.hash(&mut h);
                route.next_hops.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Builds the IGP-only resolver for BGP next hops. Admin distance picks
    /// the winner when several IGP protocols offer the same prefix.
    fn igp_resolver(&self) -> IgpResolver {
        let mut best: BTreeMap<Prefix, (mfv_types::AdminDistance, u32)> = BTreeMap::new();
        for proto in Self::IGP_PROTOS {
            for (prefix, route) in self.rib.protocol_routes(proto) {
                match best.get(prefix) {
                    Some((ad, m)) if (*ad, *m) <= (route.admin_distance, route.metric) => {}
                    _ => {
                        best.insert(*prefix, (route.admin_distance, route.metric));
                    }
                }
            }
        }
        let mut trie = PrefixTrie::new();
        for (prefix, (_, metric)) in best {
            trie.insert(prefix, metric);
        }
        IgpResolver { trie }
    }

    /// Connected routes from operational L3 interfaces.
    fn connected_routes(&self) -> Vec<RibRoute> {
        self.config
            .interfaces
            .iter()
            .filter(|i| i.is_l3())
            .filter(|i| i.name.is_loopback() || self.link_up.get(&i.name).copied().unwrap_or(false))
            .filter_map(|i| {
                let addr = i.addr?;
                Some(RibRoute::new(
                    addr.subnet(),
                    RouteProtocol::Connected,
                    0,
                    NextHop::Connected(i.name.clone()),
                ))
            })
            .collect()
    }

    fn static_routes(&self) -> Vec<RibRoute> {
        self.config
            .static_routes
            .iter()
            .map(|s| {
                let mut r =
                    RibRoute::new(s.prefix, RouteProtocol::Static, 0, NextHop::Via(s.next_hop));
                if let Some(d) = s.distance {
                    r.admin_distance = mfv_types::AdminDistance(d);
                }
                r
            })
            .collect()
    }

    /// Prefixes this router should originate into BGP.
    fn bgp_originated(&self) -> Vec<Prefix> {
        let Some(bgp_cfg) = &self.config.bgp else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for p in &bgp_cfg.networks {
            // `network` statements require the route to exist in the RIB.
            if self.rib.best(p).is_some() {
                out.push(*p);
            }
        }
        for r in &bgp_cfg.redistribute {
            let mut candidates = Vec::new();
            match r.proto {
                Redistribute::Connected => {
                    for route in self.connected_routes() {
                        candidates.push(route.prefix);
                    }
                }
                Redistribute::Static => {
                    for route in self.static_routes() {
                        candidates.push(route.prefix);
                    }
                }
                Redistribute::Isis => {
                    for (prefix, route) in self.rib.winners() {
                        if route.proto == RouteProtocol::Isis {
                            candidates.push(*prefix);
                        }
                    }
                }
            }
            match &r.route_map {
                None => out.extend(candidates),
                // A redistribution route-map acts as an origination
                // filter; set-clauses on origination are not modelled.
                // Referencing a missing route-map denies everything
                // (matching the import-path EOS behaviour).
                Some(rm_name) => {
                    if let Some(rm) = self.config.route_maps.get(rm_name) {
                        let attrs = BgpAttrs::originated(Ipv4Addr::UNSPECIFIED);
                        out.extend(candidates.into_iter().filter(|p| {
                            matches!(
                                eval_route_map(rm, &self.config.prefix_lists, p, &attrs),
                                PolicyResult::Permit(_)
                            )
                        }));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Advances the control plane; returns frames/segments to transmit and
    /// crash notifications.
    pub fn poll(&mut self, now: SimTime) -> Vec<RouterEvent> {
        if let Some(reason) = self.pending_crash.take() {
            self.state = RouterState::Crashed(now);
            self.isis = None;
            self.bgp = None;
            self.rib = Rib::new();
            for e in self.fib.entries() {
                self.changed_prefixes.insert(e.prefix);
            }
            self.fib = Fib::new();
            self.bump_fib_version();
            return vec![RouterEvent::Crashed { reason }];
        }
        if !self.is_running() {
            return Vec::new();
        }

        let mut events = std::mem::take(&mut self.pending_out);

        // 1. IS-IS. The engine hands each PDU out once with the full group
        // of target interfaces; encode once per group and share the bytes
        // across every frame (payloads are cheaply-cloneable `Bytes`).
        if let Some(isis) = &mut self.isis {
            for (ifaces, pdu) in isis.poll(now) {
                let mut payload = None;
                for iface in ifaces {
                    if self.link_up.get(&iface).copied().unwrap_or(false) {
                        let payload = payload.get_or_insert_with(|| pdu.encode()).clone();
                        events.push(RouterEvent::IsisFrame { iface, payload });
                    }
                }
            }
        }

        // 2. IGP + static + connected into the RIB — only when a source
        // actually changed. Connected/static routes move on config or link
        // events (tracked by `rib_sources_dirty`); IS-IS routes move when
        // its SPF inputs change (tracked by `routes_version`). Most polls
        // on a converged network skip this entirely.
        let isis_version = self.isis.as_ref().map(|i| i.routes_version());
        let igp_dirty = self.rib_sources_dirty || isis_version != self.last_isis_version;
        if igp_dirty {
            self.rib_resyncs += 1;
            self.rib
                .set_protocol_routes(RouteProtocol::Connected, self.connected_routes());
            self.rib
                .set_protocol_routes(RouteProtocol::Static, self.static_routes());
            let isis_routes = self.isis.as_mut().map(|i| i.routes()).unwrap_or_default();
            self.rib
                .set_protocol_routes(RouteProtocol::Isis, isis_routes);
            self.rib_sources_dirty = false;
            self.last_isis_version = isis_version;
        }

        // 3. BGP. The digest (and hence `igp_changed`) can only move when
        // the RIB's IGP sources were just rewritten, so both the digest
        // hash and the resolver trie rebuild are gated on `igp_dirty`.
        if self.bgp.is_some() {
            let originated = self.bgp_originated();
            let igp_changed = igp_dirty && {
                let digest = self.igp_digest();
                let changed = digest != self.last_igp_digest;
                if changed {
                    self.last_igp_digest = digest;
                }
                changed
            };
            if igp_changed || self.cached_resolver.is_none() {
                self.cached_resolver = Some(self.igp_resolver());
            }
            let bgp = self.bgp.as_mut().unwrap();
            if igp_changed {
                bgp.mark_all_dirty();
            }
            bgp.set_originated(originated);
            let msgs = match &self.cached_resolver {
                Some(resolver) => bgp.poll(now, resolver),
                None => Vec::new(),
            };

            // 4. FIB maintenance. A full rebuild costs O(table); at
            // production-route scale (E5) most polls change only a handful
            // of prefixes, so patch those directly instead.
            match bgp.take_selection_delta() {
                _ if igp_changed => self.full_fib_refresh(),
                mfv_routing::SelectionDelta::All => self.full_fib_refresh(),
                mfv_routing::SelectionDelta::Prefixes(set) if set.is_empty() => {}
                mfv_routing::SelectionDelta::Prefixes(set) => self.patch_fib(&set),
            }

            // Encode each distinct message once per poll. Fan-out to N
            // peers (keepalives, iBGP update floods) produces runs of equal
            // messages; a small ring memo catches them without hashing.
            let mut memo: Vec<(BgpMsg, Bytes)> = Vec::new();
            for (peer, msg) in msgs {
                let msg = self.apply_emit_bug(msg);
                let src = self.session_local_addr_for(peer);
                // Transport: we must have a route to the peer (or share a
                // subnet) for the segment to leave the box.
                if !self.can_reach(peer) {
                    continue;
                }
                let payload = match memo.iter().find(|(m, _)| *m == msg) {
                    Some((_, bytes)) => bytes.clone(),
                    None => match msg.encode() {
                        Ok(bytes) => {
                            if memo.len() >= 8 {
                                memo.remove(0);
                            }
                            memo.push((msg, bytes.clone()));
                            bytes
                        }
                        // A message that exceeds a wire length field is
                        // dropped (and counted) instead of truncated into
                        // a corrupt frame the peer would choke on.
                        Err(_) => {
                            self.encode_errors += 1;
                            continue;
                        }
                    },
                };
                events.push(RouterEvent::BgpSegment {
                    src,
                    dst: peer,
                    payload,
                });
            }
        } else if igp_dirty {
            let digest = self.igp_digest();
            if digest != self.last_igp_digest {
                self.last_igp_digest = digest;
                self.full_fib_refresh();
            }
        }

        events
    }

    /// Full FIB rebuild: sync BGP routes into the RIB and resolve.
    fn full_fib_refresh(&mut self) {
        self.full_fib_refreshes += 1;
        let bgp_routes = self
            .bgp
            .as_ref()
            .map(|b| b.rib_routes())
            .unwrap_or_default();
        let (ebgp, ibgp): (Vec<RibRoute>, Vec<RibRoute>) = bgp_routes
            .into_iter()
            .partition(|r| r.proto == RouteProtocol::EbgpLearned);
        self.rib
            .set_protocol_routes(RouteProtocol::EbgpLearned, ebgp);
        self.rib
            .set_protocol_routes(RouteProtocol::IbgpLearned, ibgp);
        self.refresh_fib();
    }

    /// Patches the FIB for a small set of changed BGP selections without
    /// touching the rest of the table. Sound because BGP next hops resolve
    /// exclusively through the IGP view, which is unchanged on this path
    /// (IGP changes force a full rebuild above).
    fn patch_fib(&mut self, prefixes: &std::collections::BTreeSet<Prefix>) {
        use mfv_routing::rib::{resolve_next_hops, FibEntry};
        self.fib_patches += 1;
        // IGP-only winner trie for resolution (small; walked per patch).
        let mut winners: PrefixTrie<&RibRoute> = PrefixTrie::new();
        for proto in Self::IGP_PROTOS {
            for (p, r) in self.rib.protocol_routes(proto) {
                match winners.get(p) {
                    Some(prev)
                        if (prev.admin_distance, prev.metric) <= (r.admin_distance, r.metric) => {}
                    _ => {
                        winners.insert(*p, r);
                    }
                }
            }
        }
        let bgp = self.bgp.as_ref().expect("patch path implies bgp");
        let mut changed = false;
        for prefix in prefixes {
            // The IGP may own this prefix at a better administrative
            // distance; BGP changes must not clobber it.
            let igp_best = self
                .rib
                .candidates(prefix)
                .filter(|r| Self::IGP_PROTOS.contains(&r.proto))
                .min_by_key(|r| (r.admin_distance, r.metric, r.proto));

            let bgp_sel = bgp
                .selected()
                .get(prefix)
                .filter(|s| s.learned_from.is_some());
            let bgp_ad = bgp_sel.map(|s| {
                if s.ebgp {
                    mfv_types::AdminDistance::default_for(RouteProtocol::EbgpLearned)
                } else {
                    mfv_types::AdminDistance::default_for(RouteProtocol::IbgpLearned)
                }
            });

            let use_bgp = match (bgp_ad, igp_best) {
                (Some(ad), Some(igp)) => ad < igp.admin_distance,
                (Some(_), None) => true,
                _ => false,
            };

            let new_entry = if use_bgp {
                let sel = bgp_sel.expect("use_bgp implies selection");
                let nhs: Vec<NextHop> = sel.next_hops.iter().map(|nh| NextHop::Via(*nh)).collect();
                let (resolved, _) = resolve_next_hops(&winners, &nhs);
                if resolved.is_empty() {
                    None
                } else {
                    Some(FibEntry {
                        prefix: *prefix,
                        proto: if sel.ebgp {
                            RouteProtocol::EbgpLearned
                        } else {
                            RouteProtocol::IbgpLearned
                        },
                        next_hops: resolved,
                    })
                }
            } else if let Some(igp) = igp_best {
                let (resolved, discard) = resolve_next_hops(&winners, &igp.next_hops);
                if resolved.is_empty() && !discard {
                    None
                } else {
                    Some(FibEntry {
                        prefix: *prefix,
                        proto: igp.proto,
                        next_hops: resolved,
                    })
                }
            } else {
                None
            };

            let old = self.fib.get(prefix);
            if old != new_entry.as_ref() {
                changed = true;
                self.changed_prefixes.insert(*prefix);
                match new_entry {
                    Some(e) => {
                        self.fib.insert(e);
                    }
                    None => {
                        self.fib.remove(prefix);
                    }
                }
            }
        }
        if changed {
            self.fib_version += 1;
            self.last_fib_digest = 0; // stale; next full refresh recomputes
        }
    }

    fn session_local_addr_for(&self, peer: Ipv4Addr) -> Ipv4Addr {
        let update_source = self
            .config
            .bgp
            .as_ref()
            .and_then(|b| b.neighbor(peer))
            .and_then(|n| n.update_source.clone());
        self.session_local_addr(peer, &update_source)
    }

    fn can_reach(&self, dst: Ipv4Addr) -> bool {
        if self.addresses().contains(&dst) {
            return true;
        }
        self.fib
            .lookup(dst)
            .map(|e| !e.next_hops.is_empty())
            .unwrap_or(false)
    }

    /// VENDOR BUG (paper §2): attach an unusual-but-valid transitive
    /// attribute to outgoing updates.
    fn apply_emit_bug(&self, msg: BgpMsg) -> BgpMsg {
        let Some(attr_type) = self.profile.bugs.emit_unusual_attr else {
            return msg;
        };
        match msg {
            BgpMsg::Update(mut u) if !u.nlri.is_empty() => {
                let already = u.attrs.iter().any(
                    |a| matches!(a, PathAttr::Unknown { type_code, .. } if *type_code == attr_type),
                );
                if !already {
                    u.attrs.push(PathAttr::Unknown {
                        flags: mfv_wire::bgp::FLAG_OPTIONAL | mfv_wire::bgp::FLAG_TRANSITIVE,
                        type_code: attr_type,
                        value: Bytes::from_static(&[0x00]),
                    });
                }
                BgpMsg::Update(u)
            }
            other => other,
        }
    }

    fn refresh_fib(&mut self) {
        let fib = self.rib.to_fib();
        if !fib.same_as(&self.fib) {
            self.fib_version += 1;
            // Symmetric difference old↔new for the churn tracker.
            for e in self.fib.entries() {
                match fib.get(&e.prefix) {
                    Some(n) if n == e => {}
                    _ => {
                        self.changed_prefixes.insert(e.prefix);
                    }
                }
            }
            for e in fib.entries() {
                if self.fib.get(&e.prefix).is_none() {
                    self.changed_prefixes.insert(e.prefix);
                }
            }
        }
        self.last_fib_digest = fib.digest();
        self.fib = fib;
    }

    fn bump_fib_version(&mut self) {
        self.fib_version += 1;
        self.last_fib_digest = self.fib.digest();
    }

    /// Restarts a crashed routing process (watchdog). State comes back
    /// empty, as after a real daemon restart.
    pub fn restart(&mut self, _now: SimTime) {
        self.state = RouterState::Running;
        self.build_engines();
        self.rib = Rib::new();
        self.fib = Fib::new();
        self.decode_errors = 0;
        self.mark_rib_sources_dirty();
    }

    /// Earliest instant the router needs a poll for its timers, or `None`
    /// if nothing is pending — an idle router with no protocol engines (or
    /// a crashed one awaiting its external restart) never needs polling, so
    /// the emulator's demand-driven scheduler can leave it alone entirely
    /// instead of waking it on a fixed interval.
    pub fn next_wakeup(&self, now: SimTime) -> Option<SimTime> {
        if self.pending_crash.is_some() || !self.pending_out.is_empty() {
            return Some(SimTime(now.0 + 1));
        }
        if !self.is_running() {
            // Restart is driven by the emulator's own timer event.
            return None;
        }
        let mut next: Option<SimTime> = None;
        if let Some(isis) = &self.isis {
            next = Some(isis.next_wakeup(now));
        }
        if let Some(bgp) = &self.bgp {
            let t = bgp.next_wakeup(now);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next.map(|t| t.max(SimTime(now.0 + 1)))
    }

    /// BGP session FSM transitions since the current routing process
    /// booted (zero while crashed or with no BGP configured).
    pub fn bgp_session_transitions(&self) -> u64 {
        self.bgp.as_ref().map_or(0, |b| b.session_transitions())
    }

    /// IS-IS adjacency state transitions since the current routing process
    /// booted.
    pub fn isis_adjacency_transitions(&self) -> u64 {
        self.isis.as_ref().map_or(0, |i| i.adjacency_transitions())
    }

    /// Introspection used by the CLI and the management interface.
    pub fn isis_engine(&self) -> Option<&IsisEngine> {
        self.isis.as_ref()
    }

    pub fn bgp_engine(&self) -> Option<&BgpEngine> {
        self.bgp.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec, Vendor};
    use mfv_types::AsNum;

    fn two_router_setup() -> (VirtualRouter, VirtualRouter) {
        let spec1 = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .ebgp(Ipv4Addr::new(100, 64, 0, 1), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap());
        let spec2 = RouterSpec::new("r2", AsNum(65002), Ipv4Addr::new(2, 2, 2, 2))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap()).with_isis())
            .ebgp(Ipv4Addr::new(100, 64, 0, 0), AsNum(65001))
            .network("2.2.2.2/32".parse().unwrap());
        let r1 = VirtualRouter::new("r1".into(), VendorProfile::ceos(), spec1.build());
        let r2 = VirtualRouter::new("r2".into(), VendorProfile::ceos(), spec2.build());
        (r1, r2)
    }

    /// Drives two directly-linked routers until quiescent.
    fn settle(r1: &mut VirtualRouter, r2: &mut VirtualRouter, start: SimTime) -> SimTime {
        let mut now = start;
        for _ in 0..300 {
            now = SimTime(now.0 + 200);
            let ev1 = r1.poll(now);
            let ev2 = r2.poll(now);
            if ev1.is_empty() && ev2.is_empty() && now.0 > start.0 + 5_000 {
                break;
            }
            for ev in ev1 {
                deliver(r2, now, ev);
            }
            for ev in ev2 {
                deliver(r1, now, ev);
            }
        }
        now
    }

    fn deliver(to: &mut VirtualRouter, now: SimTime, ev: RouterEvent) {
        match ev {
            RouterEvent::IsisFrame { payload, .. } => {
                to.push_isis(now, &"Ethernet1".into(), payload);
            }
            RouterEvent::BgpSegment { src, dst, payload } => {
                to.push_bgp(now, src, dst, payload);
            }
            RouterEvent::Crashed { .. } => {}
        }
    }

    #[test]
    fn full_stack_two_routers_converge() {
        let (mut r1, mut r2) = two_router_setup();
        settle(&mut r1, &mut r2, SimTime::ZERO);

        // IS-IS adjacency up, BGP established, loopbacks exchanged.
        let adj = r1.isis_engine().unwrap().adjacencies();
        assert!(adj
            .iter()
            .all(|a| matches!(a.state, mfv_wire::isis::AdjState::Up)));
        assert_eq!(
            r1.bgp_engine()
                .unwrap()
                .session_state(Ipv4Addr::new(100, 64, 0, 1)),
            Some(mfv_routing::SessionState::Established)
        );
        let e = r1
            .fib()
            .lookup(Ipv4Addr::new(2, 2, 2, 2))
            .expect("route to r2 loopback");
        // Both IS-IS and eBGP offer it; eBGP wins on admin distance (20<115).
        assert_eq!(e.proto, RouteProtocol::EbgpLearned);
    }

    #[test]
    fn link_down_withdraws_connected_routes() {
        let (mut r1, mut r2) = two_router_setup();
        let now = settle(&mut r1, &mut r2, SimTime::ZERO);
        assert!(r1.fib().lookup(Ipv4Addr::new(100, 64, 0, 1)).is_some());
        r1.set_link(&"Ethernet1".into(), false);
        let _ = r1.poll(SimTime(now.0 + 1000));
        assert!(
            r1.fib().lookup(Ipv4Addr::new(100, 64, 0, 1)).is_none(),
            "connected subnet must leave the FIB when the link is down"
        );
    }

    #[test]
    fn crash_on_unknown_attr_kills_process() {
        let spec1 = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new(
                "Ethernet1",
                "100.64.0.0/31".parse().unwrap(),
            ))
            .ebgp(Ipv4Addr::new(100, 64, 0, 1), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap());
        let spec2 = RouterSpec::new("r2", AsNum(65002), Ipv4Addr::new(2, 2, 2, 2))
            .vendor(Vendor::Vjunos)
            .iface(IfaceSpec::new("ge-0/0/0", "100.64.0.1/31".parse().unwrap()))
            .ebgp(Ipv4Addr::new(100, 64, 0, 0), AsNum(65001))
            .network("2.2.2.2/32".parse().unwrap());

        // r1's parser dies on attribute 213; r2 emits it.
        let p1 = VendorProfile::ceos().with_bugs(crate::profile::VendorBugs {
            crash_on_unknown_attr: Some(213),
            ..Default::default()
        });
        let p2 = VendorProfile::vjunos().with_bugs(crate::profile::VendorBugs {
            emit_unusual_attr: Some(213),
            ..Default::default()
        });
        let mut r1 = VirtualRouter::new("r1".into(), p1, spec1.build());
        let mut r2 = VirtualRouter::new("r2".into(), p2, spec2.build());

        let mut crashed = false;
        let mut now = SimTime::ZERO;
        'outer: for _ in 0..300 {
            now = SimTime(now.0 + 200);
            let ev1 = r1.poll(now);
            for ev in ev1 {
                if matches!(ev, RouterEvent::Crashed { .. }) {
                    crashed = true;
                    break 'outer;
                }
                match ev {
                    RouterEvent::IsisFrame { payload, .. } => {
                        r2.push_isis(now, &"ge-0/0/0".into(), payload)
                    }
                    RouterEvent::BgpSegment { src, dst, payload } => {
                        r2.push_bgp(now, src, dst, payload)
                    }
                    _ => {}
                }
            }
            for ev in r2.poll(now) {
                match ev {
                    RouterEvent::IsisFrame { payload, .. } => {
                        r1.push_isis(now, &"Ethernet1".into(), payload)
                    }
                    RouterEvent::BgpSegment { src, dst, payload } => {
                        r1.push_bgp(now, src, dst, payload)
                    }
                    _ => {}
                }
            }
        }
        assert!(crashed, "r1 must crash parsing the unusual attribute");
        assert!(!r1.is_running());
        assert!(r1.fib().is_empty(), "crashed process loses its FIB");

        // Watchdog restart brings it back (to crash again on the next
        // poisoned update — the crash-loop the paper describes).
        r1.restart(now);
        assert!(r1.is_running());
    }

    #[test]
    fn static_route_installed_with_distance() {
        let mut spec = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1)).iface(
            IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()),
        );
        let mut cfg = spec.build();
        cfg.static_routes.push(mfv_config::StaticRoute {
            prefix: "198.51.100.0/24".parse().unwrap(),
            next_hop: Ipv4Addr::new(100, 64, 0, 1),
            distance: Some(250),
        });
        spec.networks.clear();
        let mut r = VirtualRouter::new("r1".into(), VendorProfile::ceos(), cfg);
        let _ = r.poll(SimTime(100));
        let e = r.fib().lookup(Ipv4Addr::new(198, 51, 100, 7)).unwrap();
        assert_eq!(e.proto, RouteProtocol::Static);
        assert_eq!(
            e.next_hops[0],
            mfv_routing::FibNextHop {
                iface: "Ethernet1".into(),
                via: Some(Ipv4Addr::new(100, 64, 0, 1))
            }
        );
    }

    #[test]
    fn config_push_rebuilds_control_plane() {
        let (mut r1, mut r2) = two_router_setup();
        let now = settle(&mut r1, &mut r2, SimTime::ZERO);
        assert!(r1.fib().lookup(Ipv4Addr::new(2, 2, 2, 2)).is_some());

        // Push a config with the BGP neighbor removed.
        let mut cfg = r1.config().clone();
        cfg.bgp.as_mut().unwrap().neighbors.clear();
        r1.apply_config(cfg);
        let now2 = settle(&mut r1, &mut r2, now);
        let _ = now2;
        // Still reachable via IS-IS after re-convergence.
        let e = r1
            .fib()
            .lookup(Ipv4Addr::new(2, 2, 2, 2))
            .expect("isis route");
        assert_eq!(e.proto, RouteProtocol::Isis);
    }

    #[test]
    fn addresses_and_loopback() {
        let (r1, _) = two_router_setup();
        let addrs = r1.addresses();
        assert!(addrs.contains(&Ipv4Addr::new(2, 2, 2, 1)));
        assert!(addrs.contains(&Ipv4Addr::new(100, 64, 0, 0)));
        assert_eq!(r1.loopback(), Some(Ipv4Addr::new(2, 2, 2, 1)));
    }

    #[test]
    fn changed_prefixes_track_fib_churn_and_drain() {
        let (mut r1, mut r2) = two_router_setup();
        let now = settle(&mut r1, &mut r2, SimTime::ZERO);
        let _ = r1.take_changed_prefixes();
        r1.set_link(&"Ethernet1".into(), false);
        let _ = r1.poll(SimTime(now.0 + 1000));
        let changed = r1.take_changed_prefixes();
        assert!(
            changed.contains(&"100.64.0.0/31".parse().unwrap()),
            "link subnet must be recorded as changed: {changed:?}"
        );
        assert!(r1.take_changed_prefixes().is_empty(), "take drains the set");
    }

    #[test]
    fn inject_crash_kills_on_next_poll() {
        let (mut r1, mut r2) = two_router_setup();
        let now = settle(&mut r1, &mut r2, SimTime::ZERO);
        let _ = r1.take_changed_prefixes();
        r1.inject_crash("chaos: routing process killed");
        let evs = r1.poll(SimTime(now.0 + 100));
        assert!(matches!(evs[0], RouterEvent::Crashed { .. }));
        assert!(!r1.is_running());
        assert!(
            !r1.take_changed_prefixes().is_empty(),
            "losing the whole FIB counts as churn"
        );
        // Injecting into an already-crashed process is a no-op.
        r1.inject_crash("again");
        assert!(r1.poll(SimTime(now.0 + 200)).is_empty());
    }

    #[test]
    fn fib_version_increments_on_change_only() {
        let (mut r1, _) = two_router_setup();
        let _ = r1.poll(SimTime(100));
        let v1 = r1.fib_version();
        let _ = r1.poll(SimTime(200));
        let _ = r1.poll(SimTime(300));
        assert_eq!(r1.fib_version(), v1, "no changes, no version bumps");
        r1.set_link(&"Ethernet1".into(), false);
        let _ = r1.poll(SimTime(400));
        assert!(r1.fib_version() > v1);
    }
}
