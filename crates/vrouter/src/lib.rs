//! Virtual vendor routers — the emulation substitute for vendor container
//! images (cEOS, vJunos) in the paper's KNE deployment.
//!
//! A [`VirtualRouter`] is built from a parsed [`mfv_config::DeviceConfig`]
//! and a [`VendorProfile`]; it runs real protocol engines over byte-encoded
//! messages, maintains a RIB/FIB, exposes a vendor-flavoured CLI
//! ([`cli::exec`]), and can carry injectable vendor bugs ([`VendorBugs`])
//! that reproduce the paper's production incident classes.

pub mod cli;
pub mod profile;
pub mod router;

pub use profile::{VendorBugs, VendorProfile};
pub use router::{RouterEvent, RouterState, VirtualRouter};
