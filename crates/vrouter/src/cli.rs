//! The operator CLI: `show` commands over a live virtual router.
//!
//! §5 of the paper calls this an under-appreciated benefit of emulation —
//! when verification flags something odd, the operator can SSH to the
//! emulated device and poke at it with the *same* commands production uses.
//! Output formatting is intentionally vendor-flavoured.

use std::fmt::Write as _;

use mfv_config::Vendor;
use mfv_routing::SessionState;
use mfv_types::RouteProtocol;

use crate::router::VirtualRouter;

/// Executes a CLI command against the router, returning its output.
///
/// Supported commands (with vendor-appropriate spellings):
/// - `show version`
/// - `show running-config`
/// - `show ip route` / `show route`
/// - `show isis neighbors` / `show isis adjacency`
/// - `show isis database`
/// - `show bgp summary` / `show bgp summary`
pub fn exec(router: &VirtualRouter, command: &str) -> String {
    let cmd = command.trim().to_ascii_lowercase();
    let vendor = router.profile().vendor;
    match cmd.as_str() {
        "show version" => show_version(router),
        "show running-config" | "show configuration" => mfv_config::render(router.config()),
        "show ip route" | "show route" => show_routes(router, vendor),
        "show isis neighbors" | "show isis adjacency" => show_isis_neighbors(router),
        "show isis database" => show_isis_database(router),
        "show bgp summary" | "show ip bgp summary" => show_bgp_summary(router),
        _ => format!("% Invalid input: '{command}'\n"),
    }
}

fn show_version(router: &VirtualRouter) -> String {
    let p = router.profile();
    let image = match p.vendor {
        Vendor::Ceos => "cEOS-lab",
        Vendor::Vjunos => "vJunos-router",
    };
    format!(
        "{}\nSoftware image version: {}\nUptime: (emulated)\nState: {:?}\n",
        image,
        p.sw_version,
        router.state()
    )
}

fn proto_code(proto: RouteProtocol, vendor: Vendor) -> &'static str {
    match (vendor, proto) {
        (Vendor::Ceos, RouteProtocol::Connected) => "C",
        (Vendor::Ceos, RouteProtocol::Static) => "S",
        (Vendor::Ceos, RouteProtocol::Isis) => "I L2",
        (Vendor::Ceos, RouteProtocol::EbgpLearned) => "B E",
        (Vendor::Ceos, RouteProtocol::IbgpLearned) => "B I",
        (Vendor::Ceos, _) => "O",
        (Vendor::Vjunos, RouteProtocol::Connected) => "Direct",
        (Vendor::Vjunos, RouteProtocol::Static) => "Static",
        (Vendor::Vjunos, RouteProtocol::Isis) => "IS-IS",
        (Vendor::Vjunos, RouteProtocol::EbgpLearned) => "BGP",
        (Vendor::Vjunos, RouteProtocol::IbgpLearned) => "BGP",
        (Vendor::Vjunos, _) => "Other",
    }
}

fn show_routes(router: &VirtualRouter, vendor: Vendor) -> String {
    let mut out = String::new();
    match vendor {
        Vendor::Ceos => {
            out.push_str("VRF: default\n");
            out.push_str("Codes: C - connected, S - static, I - IS-IS, B - BGP\n\n");
        }
        Vendor::Vjunos => {
            let n = router.fib().len();
            let _ = writeln!(out, "inet.0: {n} destinations, {n} routes\n");
        }
    }
    for entry in router.fib().entries() {
        let code = proto_code(entry.proto, vendor);
        if entry.next_hops.is_empty() {
            let _ = writeln!(out, "  {:<6} {} is directly discarded", code, entry.prefix);
            continue;
        }
        for (i, nh) in entry.next_hops.iter().enumerate() {
            let lead = if i == 0 {
                format!("  {:<6} {}", code, entry.prefix)
            } else {
                format!("  {:<6} {}", "", "")
            };
            match &nh.via {
                Some(gw) => {
                    let _ = writeln!(out, "{lead} via {gw}, {}", nh.iface);
                }
                None => {
                    let _ = writeln!(out, "{lead} is directly connected, {}", nh.iface);
                }
            }
        }
    }
    out
}

fn show_isis_neighbors(router: &VirtualRouter) -> String {
    let Some(isis) = router.isis_engine() else {
        return "IS-IS is not running\n".to_string();
    };
    let mut out = String::from("Interface        System Id       State  Neighbor Address\n");
    for adj in isis.adjacencies() {
        let _ = writeln!(
            out,
            "{:<16} {:<15} {:<6} {}",
            adj.iface.to_string(),
            adj.neighbor
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:?}", adj.state),
            adj.neighbor_addr
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    out
}

fn show_isis_database(router: &VirtualRouter) -> String {
    let Some(isis) = router.isis_engine() else {
        return "IS-IS is not running\n".to_string();
    };
    let mut out = String::from("IS-IS Level-2 Link State Database\n");
    out.push_str("LSPID                   Seq Num   Hostname\n");
    for e in isis.lsdb() {
        let _ = writeln!(
            out,
            "{:<22} {:>9}   {}",
            e.lsp_id.to_string(),
            format!("0x{:08x}", e.seq),
            e.hostname.unwrap_or_else(|| "-".into()),
        );
    }
    out
}

fn show_bgp_summary(router: &VirtualRouter) -> String {
    let Some(bgp) = router.bgp_engine() else {
        return "BGP is not running\n".to_string();
    };
    let mut out = format!("BGP summary, local AS {}\n", bgp.local_as());
    out.push_str("Neighbor         AS        State        PfxRcd  PfxSent\n");
    for s in bgp.summaries() {
        let state = match s.state {
            SessionState::Idle => "Idle",
            SessionState::OpenSent => "OpenSent",
            SessionState::OpenConfirm => "OpenConfirm",
            SessionState::Established => "Estab",
        };
        let _ = writeln!(
            out,
            "{:<16} {:<9} {:<12} {:<7} {}",
            s.peer.to_string(),
            s.remote_as.to_string(),
            state,
            s.prefixes_received,
            s.prefixes_sent,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::VendorProfile;
    use crate::router::VirtualRouter;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use std::net::Ipv4Addr;

    fn router() -> VirtualRouter {
        let spec = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .ebgp(Ipv4Addr::new(100, 64, 0, 1), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap());
        let mut r = VirtualRouter::new("r1".into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn show_version_names_image_and_version() {
        let out = exec(&router(), "show version");
        assert!(out.contains("cEOS-lab"));
        assert!(out.contains("4.34.0F"));
    }

    #[test]
    fn show_ip_route_lists_connected() {
        let out = exec(&router(), "show ip route");
        assert!(out.contains("100.64.0.0/31"), "{out}");
        assert!(out.contains("directly connected"), "{out}");
        assert!(out.contains("2.2.2.1/32"), "{out}");
    }

    #[test]
    fn show_bgp_summary_lists_neighbor() {
        let out = exec(&router(), "show bgp summary");
        assert!(out.contains("100.64.0.1"), "{out}");
        assert!(out.contains("65002"), "{out}");
    }

    #[test]
    fn show_isis_database_contains_own_lsp() {
        let out = exec(&router(), "show isis database");
        assert!(out.contains("r1"), "{out}");
    }

    #[test]
    fn unknown_command_rejected() {
        let out = exec(&router(), "show frobnicator");
        assert!(out.starts_with("% Invalid input"));
    }

    #[test]
    fn show_running_config_roundtrips() {
        let r = router();
        let out = exec(&r, "show running-config");
        let parsed = mfv_config::ceos::parse(&out).unwrap();
        assert_eq!(&parsed.config, r.config());
    }
}

#[cfg(test)]
mod vjunos_tests {
    use super::*;
    use crate::profile::VendorProfile;
    use crate::router::VirtualRouter;
    use mfv_config::{IfaceSpec, RouterSpec, Vendor};
    use mfv_types::{AsNum, SimTime};
    use std::net::Ipv4Addr;

    fn vjunos_router() -> VirtualRouter {
        let spec = RouterSpec::new("r9", AsNum(65009), Ipv4Addr::new(2, 2, 2, 9))
            .vendor(Vendor::Vjunos)
            .iface(IfaceSpec::new("ge-0/0/0", "100.64.0.0/31".parse().unwrap()).with_isis())
            .ebgp(Ipv4Addr::new(100, 64, 0, 1), AsNum(65002))
            .network("2.2.2.9/32".parse().unwrap());
        let mut r = VirtualRouter::new("r9".into(), VendorProfile::vjunos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn show_version_is_vjunos_flavoured() {
        let out = exec(&vjunos_router(), "show version");
        assert!(out.contains("vJunos-router"), "{out}");
        assert!(out.contains("23.2R1"), "{out}");
    }

    #[test]
    fn show_route_uses_junos_table_header() {
        let out = exec(&vjunos_router(), "show route");
        assert!(out.contains("inet.0:"), "{out}");
        assert!(out.contains("Direct"), "{out}");
        assert!(out.contains("2.2.2.9/32"), "{out}");
    }

    #[test]
    fn show_configuration_renders_vjunos_dialect() {
        let r = vjunos_router();
        let out = exec(&r, "show configuration");
        assert!(out.contains("host-name r9;"), "{out}");
        let parsed = mfv_config::vjunos::parse(&out).unwrap();
        assert_eq!(parsed.config.hostname, "r9");
    }
}
