//! Coverage-qualified verification.
//!
//! When extraction degrades — a device unreachable over its management
//! plane, another answering from a stale cache — the dataplane under
//! verification covers only part of the network. Silently answering as if
//! it were complete is worse than failing: an absent destination makes
//! every reachability question about it *vacuously* true. This module makes
//! the gap explicit: [`Coverage`] classifies nodes by their
//! [`ExtractionStatus`], and the `qualified_*` query wrappers return a
//! [`Qualified`] answer whose caveats name exactly which devices the
//! verdict does not speak for.

use std::collections::{BTreeMap, BTreeSet};

use mfv_dataplane::Dataplane;
use mfv_types::{ExtractionStatus, NodeId, SimDuration};

use crate::graph::ForwardingAnalysis;
use crate::queries::{reachability, unreachable_pairs, ReachabilityReport};

/// Node-level view of what a snapshot actually covers.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Coverage {
    /// Nodes extracted with current state.
    pub fresh: BTreeSet<NodeId>,
    /// Nodes extracted from a telemetry cache, with the cache's age.
    pub stale: BTreeMap<NodeId, SimDuration>,
    /// Nodes with no extracted state at all, with the reason.
    pub missing: BTreeMap<NodeId, String>,
}

impl Coverage {
    pub fn from_status(status: &BTreeMap<NodeId, ExtractionStatus>) -> Coverage {
        let mut cov = Coverage::default();
        for (node, st) in status {
            match st {
                ExtractionStatus::Fresh => {
                    cov.fresh.insert(node.clone());
                }
                ExtractionStatus::Stale(age) => {
                    cov.stale.insert(node.clone(), *age);
                }
                ExtractionStatus::Missing(reason) => {
                    cov.missing.insert(node.clone(), reason.clone());
                }
            }
        }
        cov
    }

    pub fn total(&self) -> usize {
        self.fresh.len() + self.stale.len() + self.missing.len()
    }

    /// Fraction of nodes with some extracted state (fresh or stale);
    /// `1.0` for an empty node set.
    pub fn fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        (self.fresh.len() + self.stale.len()) as f64 / total as f64
    }

    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// Human-readable qualifications attached to query answers computed
    /// over this coverage. Empty when every node is fresh.
    pub fn caveats(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.missing.is_empty() {
            let names: Vec<String> = self.missing.keys().map(|n| n.to_string()).collect();
            out.push(format!(
                "{} of {} nodes not extracted ({}): forwarding through them is unverified \
                 and answers about their addresses are vacuous",
                self.missing.len(),
                self.total(),
                names.join(", "),
            ));
        }
        if !self.stale.is_empty() {
            let names: Vec<String> = self
                .stale
                .iter()
                .map(|(n, age)| format!("{n} ({age} old)"))
                .collect();
            out.push(format!(
                "{} node(s) answered from a stale cache: {}",
                self.stale.len(),
                names.join(", "),
            ));
        }
        out
    }
}

/// A query answer plus the coverage caveats that qualify it.
#[derive(Clone, PartialEq, Debug)]
pub struct Qualified<T> {
    pub value: T,
    /// Empty means the answer is as authoritative as a full extraction.
    pub caveats: Vec<String>,
}

impl<T> Qualified<T> {
    pub fn is_unqualified(&self) -> bool {
        self.caveats.is_empty()
    }
}

/// All-pairs reachability over the covered nodes, qualified by coverage.
/// Pairs involving missing nodes are not enumerated (their state is
/// unknown, not known-broken); the caveats say so.
pub fn qualified_unreachable_pairs(
    dp: &Dataplane,
    coverage: &Coverage,
) -> Qualified<Vec<ReachabilityReport>> {
    Qualified {
        value: unreachable_pairs(dp),
        caveats: coverage.caveats(),
    }
}

/// Single-pair reachability, qualified by coverage. On top of the blanket
/// coverage caveats, flags the vacuous case where an endpoint itself is
/// missing from the snapshot.
pub fn qualified_reachability(
    fa: &ForwardingAnalysis,
    src: &NodeId,
    dst_node: &NodeId,
    coverage: &Coverage,
) -> Qualified<ReachabilityReport> {
    let mut caveats = coverage.caveats();
    for endpoint in [src, dst_node] {
        if coverage.missing.contains_key(endpoint) {
            caveats.push(format!(
                "endpoint {endpoint} has no extracted state — this report is vacuous",
            ));
        }
    }
    Qualified {
        value: reachability(fa, src, dst_node),
        caveats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
    use mfv_types::{LinkId, RouteProtocol};
    use std::net::Ipv4Addr;

    fn status_map(entries: &[(&str, ExtractionStatus)]) -> BTreeMap<NodeId, ExtractionStatus> {
        entries
            .iter()
            .map(|(n, s)| (NodeId::from(*n), s.clone()))
            .collect()
    }

    #[test]
    fn coverage_classifies_and_counts() {
        let cov = Coverage::from_status(&status_map(&[
            ("r1", ExtractionStatus::Fresh),
            ("r2", ExtractionStatus::Stale(SimDuration::from_secs(30))),
            ("r3", ExtractionStatus::Missing("deadline".into())),
            ("r4", ExtractionStatus::Fresh),
        ]));
        assert_eq!(cov.fresh.len(), 2);
        assert_eq!(cov.stale.len(), 1);
        assert_eq!(cov.missing.len(), 1);
        assert_eq!(cov.fraction(), 0.75);
        assert!(!cov.is_complete());
        let caveats = cov.caveats();
        assert_eq!(caveats.len(), 2);
        assert!(caveats[0].contains("r3"), "{caveats:?}");
        assert!(caveats[1].contains("r2"), "{caveats:?}");
    }

    #[test]
    fn full_coverage_is_unqualified() {
        let cov = Coverage::from_status(&status_map(&[
            ("r1", ExtractionStatus::Fresh),
            ("r2", ExtractionStatus::Fresh),
        ]));
        assert_eq!(cov.fraction(), 1.0);
        assert!(cov.is_complete());
        assert!(cov.caveats().is_empty());
    }

    fn entry(prefix: &str, iface: &str) -> FibEntry {
        FibEntry {
            prefix: prefix.parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: iface.into(),
                via: None,
            }],
        }
    }

    /// r1—r2 meshed; r3 was not extracted and is absent from the dataplane.
    fn partial_dp() -> Dataplane {
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(entry("2.2.2.2/32", "e0"));
        let mut f2 = Fib::new();
        f2.insert(entry("2.2.2.1/32", "e0"));
        let a1: Ipv4Addr = "2.2.2.1".parse().unwrap();
        let a2: Ipv4Addr = "2.2.2.2".parse().unwrap();
        dp.add_node("r1".into(), &f1, BTreeSet::from([a1]), true);
        dp.add_node("r2".into(), &f2, BTreeSet::from([a2]), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp
    }

    fn partial_cov() -> Coverage {
        Coverage::from_status(&status_map(&[
            ("r1", ExtractionStatus::Fresh),
            ("r2", ExtractionStatus::Fresh),
            (
                "r3",
                ExtractionStatus::Missing("retry budget exhausted".into()),
            ),
        ]))
    }

    #[test]
    fn qualified_pairs_complete_with_caveats() {
        let dp = partial_dp();
        let cov = partial_cov();
        let q = qualified_unreachable_pairs(&dp, &cov);
        // The covered pair is mutually reachable; the answer is qualified.
        assert!(q.value.is_empty());
        assert!(!q.is_unqualified());
        assert!(q.caveats[0].contains("r3"), "{:?}", q.caveats);
    }

    #[test]
    fn vacuous_endpoint_is_flagged() {
        let dp = partial_dp();
        let cov = partial_cov();
        let fa = ForwardingAnalysis::new(&dp);
        let q = qualified_reachability(&fa, &"r1".into(), &"r3".into(), &cov);
        // No addresses for r3 in the snapshot: vacuously "fully reachable".
        assert!(q.value.fully_reachable());
        assert!(
            q.caveats.iter().any(|c| c.contains("vacuous")),
            "{:?}",
            q.caveats
        );
    }
}
