//! Symbolic forwarding analysis over a dataplane snapshot.
//!
//! The engine propagates *sets of destination addresses* (packet classes)
//! hop by hop: at each node the remaining class is partitioned by the FIB's
//! longest-prefix-match structure, each partition follows its next hops, and
//! every packet ends in exactly one [`Disposition`]. Because classes are
//! exact [`IpSet`]s, a query covers **all 2³² destinations at once** — the
//! exhaustive-search property that distinguishes verification from probing
//! (§3: "identifying specific routes that do not satisfy a desired invariant
//! or concluding no such routes exist").

// mfv-lint: allow-file(D3, relaxed atomics here are monotonic hit/miss diagnostics; RMW totals are exact under any ordering and never feed a schedule or verdict)
// mfv-lint: allow(D1, HashMap here backs digest-keyed caches that are only probed, never iterated)
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use mfv_dataplane::{Dataplane, NodeDataplane};
use mfv_routing::rib::{Fib, FibEntry};
use mfv_types::{IfaceId, IpSet, NodeId, PrefixTrie};

/// The fate of a packet class.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Disposition {
    /// Delivered: the destination address is owned by this node.
    Accepted(NodeId),
    /// Dropped: no FIB entry matched at this node.
    NoRoute(NodeId),
    /// Dropped: matched a null/discard route at this node.
    NullRoute(NodeId),
    /// Left the modelled network via an interface with no attached link
    /// (e.g. toward an external peer) at this node.
    ExitsNetwork(NodeId),
    /// Dropped: the node was down (crashed/unbooted) when encountered.
    NodeDown(NodeId),
    /// Forwarding loop detected (the node that was revisited).
    Loop(NodeId),
    /// Equal-cost branches disagree about the fate of this class.
    EcmpDivergent(NodeId),
}

impl Disposition {
    /// Is this packet class successfully delivered?
    pub fn is_delivered(&self) -> bool {
        matches!(self, Disposition::Accepted(_))
    }

    /// The node where the fate was decided.
    pub fn node(&self) -> &NodeId {
        match self {
            Disposition::Accepted(n)
            | Disposition::NoRoute(n)
            | Disposition::NullRoute(n)
            | Disposition::ExitsNetwork(n)
            | Disposition::NodeDown(n)
            | Disposition::Loop(n)
            | Disposition::EcmpDivergent(n) => n,
        }
    }
}

impl std::fmt::Display for Disposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Disposition::Accepted(n) => write!(f, "accepted at {n}"),
            Disposition::NoRoute(n) => write!(f, "no route at {n}"),
            Disposition::NullRoute(n) => write!(f, "null-routed at {n}"),
            Disposition::ExitsNetwork(n) => write!(f, "exits network at {n}"),
            Disposition::NodeDown(n) => write!(f, "dropped at down node {n}"),
            Disposition::Loop(n) => write!(f, "loops at {n}"),
            Disposition::EcmpDivergent(n) => write!(f, "ecmp-divergent at {n}"),
        }
    }
}

/// One hop of a single-packet trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceHop {
    pub node: NodeId,
    /// The egress interface taken (absent on the final hop).
    pub egress: Option<IfaceId>,
}

/// Result of a single-packet traceroute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    pub hops: Vec<TraceHop>,
    pub disposition: Disposition,
}

/// Effective match classes derived from one FIB — the shareable unit of
/// the class cache.
pub struct NodeClasses {
    /// Disjoint effective match classes: (class, entry) where `class` is
    /// exactly the set of destinations this entry forwards (its prefix
    /// minus all more-specific prefixes in the same FIB).
    pub classes: Vec<(IpSet, FibEntry)>,
    /// Union of all matched destinations (complement = NoRoute).
    pub covered: IpSet,
}

/// Cross-snapshot cache of per-FIB effective classes, keyed by
/// [`NodeDataplane::fib_digest`].
///
/// What-if sweeps analyse hundreds of variant dataplanes that differ from
/// the baseline at only a few nodes; sharing the unchanged nodes' classes
/// makes re-analysis cost proportional to the *changed* nodes rather than
/// the whole network. Thread-safe, so one cache can back a parallel sweep.
#[derive(Default)]
pub struct ClassCache {
    // mfv-lint: allow(D1, probed by digest only; iteration order never observed)
    by_digest: Mutex<HashMap<u64, Arc<NodeClasses>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ClassCache {
    pub fn new() -> ClassCache {
        ClassCache::default()
    }

    /// `(hits, misses)` over the cache's lifetime. A sweep that reuses the
    /// baseline's classes for unchanged nodes shows up as a high hit count.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn classes_for(&self, node: &NodeDataplane) -> Arc<NodeClasses> {
        let digest = node.fib_digest();
        // Poisoning cannot corrupt the cache (insertions are atomic via the
        // entry API), so recover the guard instead of propagating a panic
        // from an unrelated worker thread into this sweep.
        if let Some(hit) = self
            .by_digest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&digest)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Build outside the lock: class computation is the expensive part,
        // and a rare duplicate build is cheaper than serialising all misses.
        let built = Arc::new(effective_classes(&node.fib()));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.by_digest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(digest)
            .or_insert(built)
            .clone()
    }
}

struct NodeState {
    fib: Fib,
    classes: Arc<NodeClasses>,
    addresses: IpSet,
    up: bool,
}

/// A disposition partition of some scope: disjoint packet classes, each
/// with the fate packets in it meet.
pub type DispositionRows = Vec<(IpSet, Disposition)>;

/// The nodes an exploration's answer was derived from: every node whose
/// FIB, liveness, or addresses the verdict depends on. If none of these
/// change between snapshots (and no adjacent link does), the answer is
/// still valid — the invariant the standing-query layer's pair-level
/// incrementality rests on.
pub type DepSet = BTreeSet<NodeId>;

/// A memoised exploration result: the disposition partition plus the
/// dependency set its exploration touched.
type MemoEntry = (Arc<DispositionRows>, Arc<DepSet>);

/// The analysis context: a dataplane with per-node match classes
/// precomputed.
pub struct ForwardingAnalysis {
    nodes: BTreeMap<NodeId, NodeState>,
    dp: Dataplane,
    /// Memoised disposition partitions per (entry node, scope), each with
    /// the dependency set its exploration touched. The baseline side of a
    /// differential sweep asks the same question once per variant;
    /// computing it once amortises the whole sweep.
    // mfv-lint: allow(D1, probed by (node, scope) key only; iteration order never observed)
    memo: Mutex<HashMap<(NodeId, IpSet), MemoEntry>>,
    memo_hits: AtomicUsize,
    memo_misses: AtomicUsize,
    /// Classes computed locally (not served by a [`ClassCache`]).
    classes_built: usize,
}

fn effective_classes(fib: &Fib) -> NodeClasses {
    let entries: Vec<&FibEntry> = fib.entries().collect();
    // LPM holes are exactly the topmost more-specific prefixes present in
    // the same FIB; the trie walk finds them directly instead of scanning
    // all prefix pairs.
    let mut trie = PrefixTrie::new();
    for e in &entries {
        trie.insert(e.prefix, ());
    }
    let mut covered = IpSet::empty();
    let mut classes = Vec::with_capacity(entries.len());
    for e in &entries {
        let mut eff = IpSet::from_prefix(&e.prefix);
        for hole in trie.max_descendants(&e.prefix) {
            eff = eff.subtract(&IpSet::from_prefix(&hole));
        }
        covered = covered.union(&IpSet::from_prefix(&e.prefix));
        if !eff.is_empty() {
            classes.push((eff, (*e).clone()));
        }
    }
    NodeClasses { classes, covered }
}

impl ForwardingAnalysis {
    pub fn new(dp: &Dataplane) -> ForwardingAnalysis {
        Self::build(dp, None)
    }

    /// Like [`ForwardingAnalysis::new`], but reuses effective classes from
    /// `cache` for any node whose FIB digest has been seen before.
    pub fn with_cache(dp: &Dataplane, cache: &ClassCache) -> ForwardingAnalysis {
        Self::build(dp, Some(cache))
    }

    fn build(dp: &Dataplane, cache: Option<&ClassCache>) -> ForwardingAnalysis {
        let mut nodes = BTreeMap::new();
        let mut classes_built = 0usize;
        for (name, node) in &dp.nodes {
            let classes = match cache {
                Some(c) => c.classes_for(node),
                None => {
                    classes_built += 1;
                    Arc::new(effective_classes(&node.fib()))
                }
            };
            let mut addresses = IpSet::empty();
            for a in &node.addresses {
                addresses = addresses.union(&IpSet::single(*a));
            }
            nodes.insert(
                name.clone(),
                NodeState {
                    fib: node.fib(),
                    classes,
                    addresses,
                    up: node.up,
                },
            );
        }
        ForwardingAnalysis {
            nodes,
            dp: dp.clone(),
            // mfv-lint: allow(D1, memo is probed by key only; iteration order never observed)
            memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicUsize::new(0),
            memo_misses: AtomicUsize::new(0),
            classes_built,
        }
    }

    /// `(hits, misses)` of the per-(entry, scope) disposition memo.
    pub fn memo_stats(&self) -> (usize, usize) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// Flushes this analysis' counters into `obs`. Pass the [`ClassCache`]
    /// backing the sweep (if any) to fold its hit/miss totals in too.
    pub fn observe_into(&self, obs: &mut mfv_obs::Obs, cache: Option<&ClassCache>) {
        let m = &mut obs.metrics;
        m.inc("verify.classes.built", self.classes_built as u64);
        let (mh, mm) = self.memo_stats();
        m.inc("verify.memo.hits", mh as u64);
        m.inc("verify.memo.misses", mm as u64);
        if let Some(c) = cache {
            let (ch, cm) = c.stats();
            m.inc("verify.classes.cache_hits", ch as u64);
            m.inc("verify.classes.cache_misses", cm as u64);
        }
    }

    pub fn dataplane(&self) -> &Dataplane {
        &self.dp
    }

    pub fn node_names(&self) -> Vec<NodeId> {
        self.nodes.keys().cloned().collect()
    }

    /// Exhaustively computes the fate of every destination in `dst`,
    /// for packets entering the network at `from`.
    pub fn dispositions_from(&self, from: &NodeId, dst: &IpSet) -> Vec<(IpSet, Disposition)> {
        self.dispositions_from_shared(from, dst).as_ref().clone()
    }

    /// Memoised variant of [`ForwardingAnalysis::dispositions_from`]
    /// returning a shared handle; repeated queries for the same
    /// (entry, scope) pair are computed once per analysis.
    pub fn dispositions_from_shared(&self, from: &NodeId, dst: &IpSet) -> Arc<DispositionRows> {
        self.dispositions_from_deps(from, dst).0
    }

    /// Like [`ForwardingAnalysis::dispositions_from_shared`], but also
    /// returns the dependency set: every node the exploration consulted
    /// (including the entry node and any down/missing node encountered).
    /// The standing-query layer keys verdict reuse on this set.
    pub fn dispositions_from_deps(
        &self,
        from: &NodeId,
        dst: &IpSet,
    ) -> (Arc<DispositionRows>, Arc<DepSet>) {
        let key = (from.clone(), dst.clone());
        // Same poison-recovery rationale as `ClassCache::classes_for`.
        if let Some((rows, deps)) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(rows), Arc::clone(deps));
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let mut visited = Vec::new();
        let mut deps = DepSet::new();
        // The entry node is always a dependency, even for an empty scope.
        deps.insert(from.clone());
        let mut out = self.explore(from, dst.clone(), &mut visited, &mut deps);
        // Canonical order for stable comparison.
        out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.ranges().cmp(b.0.ranges())));
        let rows = Arc::new(coalesce(out));
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert((rows, Arc::new(deps)))
            .clone()
    }

    /// Point query: the fate of one packet `(from, dst)`, answered by a
    /// class lookup in the memoised full-space partition for `from`. The
    /// first query per entry node computes the partition; every subsequent
    /// point query for that node is a scan over its O(classes) rows rather
    /// than a fresh graph walk — the batching idiom the serve front end
    /// relies on.
    pub fn fate_of(&self, from: &NodeId, dst: Ipv4Addr) -> Disposition {
        let rows = self.dispositions_from_shared(from, &IpSet::full());
        for (set, disp) in rows.iter() {
            if set.contains(dst) {
                return disp.clone();
            }
        }
        // Unreachable: the partition covers the full space. Conservative
        // fallback rather than a panic (P1).
        Disposition::NoRoute(from.clone())
    }

    fn explore(
        &self,
        node: &NodeId,
        dst: IpSet,
        visited: &mut Vec<NodeId>,
        deps: &mut DepSet,
    ) -> Vec<(IpSet, Disposition)> {
        if dst.is_empty() {
            return Vec::new();
        }
        deps.insert(node.clone());
        let Some(state) = self.nodes.get(node) else {
            return vec![(dst, Disposition::NodeDown(node.clone()))];
        };
        if !state.up {
            return vec![(dst, Disposition::NodeDown(node.clone()))];
        }
        let mut out = Vec::new();

        // Local delivery first.
        let accepted = dst.intersect(&state.addresses);
        if !accepted.is_empty() {
            out.push((accepted.clone(), Disposition::Accepted(node.clone())));
        }
        let mut rest = dst.subtract(&accepted);
        if rest.is_empty() {
            return out;
        }

        // Loop check: transit through an already-visited node.
        if visited.contains(node) {
            out.push((rest, Disposition::Loop(node.clone())));
            return out;
        }
        visited.push(node.clone());

        // Unrouted remainder.
        let unrouted = rest.subtract(&state.classes.covered);
        if !unrouted.is_empty() {
            out.push((unrouted.clone(), Disposition::NoRoute(node.clone())));
            rest = rest.subtract(&unrouted);
        }

        for (eff, entry) in &state.classes.classes {
            let cls = rest.intersect(eff);
            if cls.is_empty() {
                continue;
            }
            if entry.next_hops.is_empty() {
                out.push((cls, Disposition::NullRoute(node.clone())));
                continue;
            }
            // Explore every ECMP branch; merge their verdicts per subclass.
            let mut branch_results: Vec<Vec<(IpSet, Disposition)>> = Vec::new();
            for nh in &entry.next_hops {
                match self.dp.peer_of(node, &nh.iface) {
                    Some((peer, _)) => {
                        let peer = peer.clone();
                        branch_results.push(self.explore(&peer, cls.clone(), visited, deps));
                    }
                    None => {
                        branch_results
                            .push(vec![(cls.clone(), Disposition::ExitsNetwork(node.clone()))]);
                    }
                }
            }
            out.extend(merge_branches(node, branch_results));
        }
        visited.pop();
        out
    }

    /// Single-packet trace with full hop recording (ECMP: first next hop,
    /// as a hashing dataplane would pick deterministically for one flow).
    pub fn trace(&self, from: &NodeId, dst: Ipv4Addr) -> Trace {
        let mut hops = Vec::new();
        let mut node = from.clone();
        let mut seen: Vec<NodeId> = Vec::new();
        loop {
            let Some(state) = self.nodes.get(&node) else {
                hops.push(TraceHop {
                    node: node.clone(),
                    egress: None,
                });
                return Trace {
                    hops,
                    disposition: Disposition::NodeDown(node),
                };
            };
            if !state.up {
                hops.push(TraceHop {
                    node: node.clone(),
                    egress: None,
                });
                return Trace {
                    hops,
                    disposition: Disposition::NodeDown(node),
                };
            }
            if state.addresses.contains(dst) {
                hops.push(TraceHop {
                    node: node.clone(),
                    egress: None,
                });
                return Trace {
                    hops,
                    disposition: Disposition::Accepted(node),
                };
            }
            if seen.contains(&node) {
                hops.push(TraceHop {
                    node: node.clone(),
                    egress: None,
                });
                return Trace {
                    hops,
                    disposition: Disposition::Loop(node),
                };
            }
            seen.push(node.clone());
            let Some(entry) = state.fib.lookup(dst) else {
                hops.push(TraceHop {
                    node: node.clone(),
                    egress: None,
                });
                return Trace {
                    hops,
                    disposition: Disposition::NoRoute(node),
                };
            };
            let Some(nh) = entry.next_hops.first() else {
                hops.push(TraceHop {
                    node: node.clone(),
                    egress: None,
                });
                return Trace {
                    hops,
                    disposition: Disposition::NullRoute(node),
                };
            };
            hops.push(TraceHop {
                node: node.clone(),
                egress: Some(nh.iface.clone()),
            });
            match self.dp.peer_of(&node, &nh.iface) {
                Some((peer, _)) => {
                    node = peer.clone();
                }
                None => {
                    return Trace {
                        hops,
                        disposition: Disposition::ExitsNetwork(node),
                    };
                }
            }
        }
    }
}

/// Are two fates equivalent for ECMP purposes? Delivery must land at the
/// same node; failures of the same kind are equivalent wherever they occur
/// (flow hashing picks one branch — the *observable* fate class matters).
fn equivalent(a: &Disposition, b: &Disposition) -> bool {
    match (a, b) {
        (Disposition::Accepted(x), Disposition::Accepted(y)) => x == y,
        (Disposition::NoRoute(_), Disposition::NoRoute(_))
        | (Disposition::NullRoute(_), Disposition::NullRoute(_))
        | (Disposition::ExitsNetwork(_), Disposition::ExitsNetwork(_))
        | (Disposition::NodeDown(_), Disposition::NodeDown(_))
        | (Disposition::Loop(_), Disposition::Loop(_))
        | (Disposition::EcmpDivergent(_), Disposition::EcmpDivergent(_)) => true,
        _ => false,
    }
}

/// Merges per-branch verdicts: where branches agree the verdict stands;
/// where they disagree the class is ECMP-divergent.
fn merge_branches(
    node: &NodeId,
    mut branches: Vec<Vec<(IpSet, Disposition)>>,
) -> Vec<(IpSet, Disposition)> {
    let Some(mut acc) = branches.pop() else {
        return Vec::new();
    };
    while let Some(next) = branches.pop() {
        let mut merged = Vec::new();
        for (set_a, disp_a) in &acc {
            for (set_b, disp_b) in &next {
                let inter = set_a.intersect(set_b);
                if inter.is_empty() {
                    continue;
                }
                if equivalent(disp_a, disp_b) {
                    merged.push((inter, disp_a.clone()));
                } else {
                    merged.push((inter, Disposition::EcmpDivergent(node.clone())));
                }
            }
        }
        acc = merged;
    }
    acc
}

/// Coalesces adjacent result rows with the same disposition.
fn coalesce(rows: Vec<(IpSet, Disposition)>) -> Vec<(IpSet, Disposition)> {
    let mut by_disp: BTreeMap<Disposition, IpSet> = BTreeMap::new();
    for (set, disp) in rows {
        let entry = by_disp.entry(disp).or_insert_with(IpSet::empty);
        *entry = entry.union(&set);
    }
    by_disp.into_iter().map(|(d, s)| (s, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_routing::rib::{FibEntry, FibNextHop};
    use mfv_types::{LinkId, Prefix, RouteProtocol};
    use std::collections::BTreeSet;

    fn entry(prefix: &str, iface: &str, via: Option<&str>) -> FibEntry {
        FibEntry {
            prefix: prefix.parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: iface.into(),
                via: via.map(|v| v.parse().unwrap()),
            }],
        }
    }

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// r1 -- r2 -- r3 line where loopbacks 2.2.2.{1,2,3} are routed hop by
    /// hop.
    fn line_dp() -> Dataplane {
        let mut dp = Dataplane::new();
        let mk_fib = |entries: Vec<FibEntry>| {
            let mut f = Fib::new();
            for e in entries {
                f.insert(e);
            }
            f
        };
        dp.add_node(
            "r1".into(),
            &mk_fib(vec![
                entry("2.2.2.2/32", "e0", Some("10.0.12.2")),
                entry("2.2.2.3/32", "e0", Some("10.0.12.2")),
            ]),
            BTreeSet::from([addr("2.2.2.1"), addr("10.0.12.1")]),
            true,
        );
        dp.add_node(
            "r2".into(),
            &mk_fib(vec![
                entry("2.2.2.1/32", "e0", Some("10.0.12.1")),
                entry("2.2.2.3/32", "e1", Some("10.0.23.3")),
            ]),
            BTreeSet::from([addr("2.2.2.2"), addr("10.0.12.2"), addr("10.0.23.2")]),
            true,
        );
        dp.add_node(
            "r3".into(),
            &mk_fib(vec![
                entry("2.2.2.1/32", "e0", Some("10.0.23.2")),
                entry("2.2.2.2/32", "e0", Some("10.0.23.2")),
            ]),
            BTreeSet::from([addr("2.2.2.3"), addr("10.0.23.3")]),
            true,
        );
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp.add_link(LinkId::new(
            ("r2".into(), "e1".into()),
            ("r3".into(), "e0".into()),
        ));
        dp
    }

    #[test]
    fn transit_delivery_and_trace() {
        let fa = ForwardingAnalysis::new(&line_dp());
        let trace = fa.trace(&"r1".into(), addr("2.2.2.3"));
        assert_eq!(trace.disposition, Disposition::Accepted("r3".into()));
        let nodes: Vec<String> = trace.hops.iter().map(|h| h.node.to_string()).collect();
        assert_eq!(nodes, vec!["r1", "r2", "r3"]);
    }

    #[test]
    fn exhaustive_dispositions_partition_full_space() {
        let fa = ForwardingAnalysis::new(&line_dp());
        let rows = fa.dispositions_from(&"r1".into(), &IpSet::full());
        let total: u64 = rows.iter().map(|(s, _)| s.count()).sum();
        assert_eq!(
            total,
            1u64 << 32,
            "every destination classified exactly once"
        );
        // 2.2.2.3 delivered at r3; unknown space NoRoute at r1.
        let accepted_r3 = rows
            .iter()
            .find(|(_, d)| *d == Disposition::Accepted("r3".into()))
            .unwrap();
        assert!(accepted_r3.0.contains(addr("2.2.2.3")));
        let noroute = rows
            .iter()
            .find(|(_, d)| *d == Disposition::NoRoute("r1".into()))
            .unwrap();
        assert!(noroute.0.contains(addr("8.8.8.8")));
    }

    #[test]
    fn loop_detected() {
        // r1 and r2 point 9.9.9.9/32 at each other.
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(entry("9.9.9.9/32", "e0", None));
        let mut f2 = Fib::new();
        f2.insert(entry("9.9.9.9/32", "e0", None));
        dp.add_node("r1".into(), &f1, BTreeSet::new(), true);
        dp.add_node("r2".into(), &f2, BTreeSet::new(), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        let fa = ForwardingAnalysis::new(&dp);
        let trace = fa.trace(&"r1".into(), addr("9.9.9.9"));
        assert!(matches!(trace.disposition, Disposition::Loop(_)));
        let rows = fa.dispositions_from(&"r1".into(), &IpSet::single(addr("9.9.9.9")));
        assert!(matches!(rows[0].1, Disposition::Loop(_)));
    }

    #[test]
    fn null_route_and_exit() {
        let mut dp = Dataplane::new();
        let mut f = Fib::new();
        f.insert(FibEntry {
            prefix: "192.0.2.0/24".parse().unwrap(),
            proto: RouteProtocol::Static,
            next_hops: vec![],
        });
        f.insert(entry("198.51.100.0/24", "uplink", Some("100.64.0.1")));
        dp.add_node("r1".into(), &f, BTreeSet::new(), true);
        let fa = ForwardingAnalysis::new(&dp);
        assert_eq!(
            fa.trace(&"r1".into(), addr("192.0.2.5")).disposition,
            Disposition::NullRoute("r1".into())
        );
        assert_eq!(
            fa.trace(&"r1".into(), addr("198.51.100.5")).disposition,
            Disposition::ExitsNetwork("r1".into())
        );
    }

    #[test]
    fn down_node_drops() {
        let mut dp = line_dp();
        dp.nodes.get_mut(&NodeId::from("r2")).unwrap().up = false;
        let fa = ForwardingAnalysis::new(&dp);
        let trace = fa.trace(&"r1".into(), addr("2.2.2.3"));
        assert_eq!(trace.disposition, Disposition::NodeDown("r2".into()));
    }

    #[test]
    fn lpm_partition_respects_specificity() {
        // A /8 toward r2 with a /24 hole toward discard.
        let mut dp = Dataplane::new();
        let mut f = Fib::new();
        f.insert(entry("10.0.0.0/8", "e0", None));
        f.insert(FibEntry {
            prefix: "10.5.5.0/24".parse().unwrap(),
            proto: RouteProtocol::Static,
            next_hops: vec![],
        });
        dp.add_node("r1".into(), &f, BTreeSet::new(), true);
        dp.add_node(
            "r2".into(),
            &Fib::new(),
            BTreeSet::from([addr("10.1.1.1")]),
            true,
        );
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        let fa = ForwardingAnalysis::new(&dp);
        let rows = fa.dispositions_from(
            &"r1".into(),
            &IpSet::from_prefix(&"10.0.0.0/8".parse::<Prefix>().unwrap()),
        );
        let nulled = rows
            .iter()
            .find(|(_, d)| *d == Disposition::NullRoute("r1".into()))
            .unwrap();
        assert_eq!(nulled.0.count(), 256);
        assert!(nulled.0.contains(addr("10.5.5.99")));
        let accepted = rows
            .iter()
            .find(|(_, d)| *d == Disposition::Accepted("r2".into()))
            .unwrap();
        assert!(accepted.0.contains(addr("10.1.1.1")));
    }

    #[test]
    fn ecmp_divergence_flagged() {
        // r1 splits 9.9.9.0/24 across two branches: r2 accepts, r3 has no
        // route → divergent.
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(FibEntry {
            prefix: "9.9.9.0/24".parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![
                FibNextHop {
                    iface: "e0".into(),
                    via: None,
                },
                FibNextHop {
                    iface: "e1".into(),
                    via: None,
                },
            ],
        });
        dp.add_node("r1".into(), &f1, BTreeSet::new(), true);
        dp.add_node(
            "r2".into(),
            &Fib::new(),
            (0..256).map(|i| Ipv4Addr::new(9, 9, 9, i as u8)).collect(),
            true,
        );
        dp.add_node("r3".into(), &Fib::new(), BTreeSet::new(), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp.add_link(LinkId::new(
            ("r1".into(), "e1".into()),
            ("r3".into(), "e0".into()),
        ));
        let fa = ForwardingAnalysis::new(&dp);
        let rows = fa.dispositions_from(
            &"r1".into(),
            &IpSet::from_prefix(&"9.9.9.0/24".parse::<Prefix>().unwrap()),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, Disposition::EcmpDivergent("r1".into()));
    }

    #[test]
    fn ecmp_agreement_is_transparent() {
        // Both branches deliver to nodes owning the same... instead: both
        // branches NoRoute → class reported NoRoute, not divergent.
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(FibEntry {
            prefix: "9.9.9.0/24".parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![
                FibNextHop {
                    iface: "e0".into(),
                    via: None,
                },
                FibNextHop {
                    iface: "e1".into(),
                    via: None,
                },
            ],
        });
        dp.add_node("r1".into(), &f1, BTreeSet::new(), true);
        dp.add_node("r2".into(), &Fib::new(), BTreeSet::new(), true);
        dp.add_node("r3".into(), &Fib::new(), BTreeSet::new(), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp.add_link(LinkId::new(
            ("r1".into(), "e1".into()),
            ("r3".into(), "e0".into()),
        ));
        let fa = ForwardingAnalysis::new(&dp);
        let rows = fa.dispositions_from(
            &"r1".into(),
            &IpSet::from_prefix(&"9.9.9.0/24".parse::<Prefix>().unwrap()),
        );
        assert!(rows
            .iter()
            .all(|(_, d)| matches!(d, Disposition::NoRoute(_))));
    }
}
