//! Standing queries: invariants verified continuously, re-evaluated
//! incrementally.
//!
//! A one-shot query answers once and forgets; continuous verification
//! keeps a set of invariants *standing* against a stream of dataplane
//! snapshots and reports only when a verdict changes. Re-evaluation is
//! incremental at the class level: every evaluation rebuilds its
//! [`ForwardingAnalysis`] through one shared [`ClassCache`], so a node
//! whose FIB digest is unchanged reuses its effective classes and only
//! nodes whose AFTs actually changed pay class computation. The cache's
//! hit/miss counters are exposed ([`StandingQueries::cache_stats`])
//! precisely so a test can prove that a single-node resync invalidates
//! that node alone.
//!
//! Verdicts carry the coverage caveats of the snapshot they were computed
//! from: while a telemetry stream is degraded, the verdict does not
//! silently claim authority over nodes it cannot see.

use std::collections::BTreeMap;

use mfv_dataplane::Dataplane;
use mfv_types::SimTime;

use crate::coverage::Coverage;
use crate::graph::{ClassCache, ForwardingAnalysis};
use crate::queries::{detect_blackholes_with, detect_loops_with, unreachable_pairs_with};

/// The state of one standing invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// Does the invariant hold over the covered part of the network?
    pub holds: bool,
    /// Deterministic one-line summary of the findings.
    pub detail: String,
    /// Coverage qualifications: non-empty means the verdict does not
    /// speak for the whole network.
    pub caveats: Vec<String>,
}

/// A verdict transition: emitted only when `(holds, detail, caveats)`
/// changed since the previous evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerdictUpdate {
    pub at: SimTime,
    pub query: &'static str,
    pub verdict: Verdict,
}

impl std::fmt::Display for VerdictUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={}ms {} holds={} caveats={} — {}",
            self.at.0,
            self.query,
            self.verdict.holds,
            self.verdict.caveats.len(),
            self.verdict.detail,
        )
    }
}

/// The standing invariants of the continuous-verification loop:
/// full-mesh reachability, loop freedom, and black-hole freedom.
#[derive(Default)]
pub struct StandingQueries {
    cache: ClassCache,
    verdicts: BTreeMap<&'static str, Verdict>,
    evaluations: u64,
    updates: u64,
}

impl StandingQueries {
    pub fn new() -> StandingQueries {
        StandingQueries::default()
    }

    /// `(hits, misses)` of the shared class cache — the proof surface for
    /// single-node invalidation: after a content-preserving resync, hits
    /// grow and misses do not.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.cache.stats()
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Current verdict per query, if evaluated at least once.
    pub fn verdicts(&self) -> &BTreeMap<&'static str, Verdict> {
        &self.verdicts
    }

    /// Re-evaluates every standing query against `dp` and returns the
    /// verdicts that changed. Classes for unchanged nodes come from the
    /// shared cache; a changed node's digest misses and is rebuilt —
    /// re-analysis cost is proportional to what changed.
    pub fn evaluate(
        &mut self,
        at: SimTime,
        dp: &Dataplane,
        coverage: &Coverage,
    ) -> Vec<VerdictUpdate> {
        self.evaluations += 1;
        let fa = ForwardingAnalysis::with_cache(dp, &self.cache);
        let caveats = coverage.caveats();
        let mut out = Vec::new();

        let pairs = unreachable_pairs_with(&fa);
        let detail = match pairs.first() {
            None => format!("all {} covered node pairs reachable", {
                let n = dp.nodes.len();
                n * n.saturating_sub(1)
            }),
            Some(first) => format!(
                "{} unreachable pair(s) (first: {} -> {})",
                pairs.len(),
                first.src,
                first.dst_node
            ),
        };
        self.consider(
            at,
            "reachability",
            Verdict {
                holds: pairs.is_empty(),
                detail,
                caveats: caveats.clone(),
            },
            &mut out,
        );

        let loops = detect_loops_with(&fa);
        let detail = match loops.first() {
            None => "no forwarding loops".to_string(),
            Some(first) => format!(
                "{} looping class(es) (first: from {} at {})",
                loops.len(),
                first.src,
                first.at
            ),
        };
        self.consider(
            at,
            "loop_freedom",
            Verdict {
                holds: loops.is_empty(),
                detail,
                caveats: caveats.clone(),
            },
            &mut out,
        );

        let holes = detect_blackholes_with(&fa);
        let detail = match holes.first() {
            None => "no black holes toward owned addresses".to_string(),
            Some(first) => format!(
                "{} black-hole class(es) (first: from {} dropped at {})",
                holes.len(),
                first.src,
                first.dropped_at
            ),
        };
        self.consider(
            at,
            "blackhole_freedom",
            Verdict {
                holds: holes.is_empty(),
                detail,
                caveats,
            },
            &mut out,
        );

        out
    }

    fn consider(
        &mut self,
        at: SimTime,
        query: &'static str,
        verdict: Verdict,
        out: &mut Vec<VerdictUpdate>,
    ) {
        if self.verdicts.get(query) == Some(&verdict) {
            return;
        }
        self.verdicts.insert(query, verdict.clone());
        self.updates += 1;
        out.push(VerdictUpdate { at, query, verdict });
    }

    /// Flushes counters into `obs` under `verify.standing.*`. Everything
    /// here is derived from dataplane state only, so it is byte-stable
    /// across same-seed runs.
    pub fn observe_into(&self, obs: &mut mfv_obs::Obs) {
        let m = &mut obs.metrics;
        m.inc("verify.standing.evaluations", self.evaluations);
        m.inc("verify.standing.updates", self.updates);
        let (hits, misses) = self.cache.stats();
        m.inc("verify.standing.class_cache_hits", hits as u64);
        m.inc("verify.standing.class_cache_misses", misses as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
    use mfv_types::{ExtractionStatus, LinkId, NodeId, RouteProtocol};
    use std::collections::BTreeSet;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn entry(prefix: &str, iface: &str) -> FibEntry {
        FibEntry {
            prefix: prefix.parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: iface.into(),
                via: None,
            }],
        }
    }

    fn pair_dp() -> Dataplane {
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(entry("2.2.2.2/32", "e0"));
        let mut f2 = Fib::new();
        f2.insert(entry("2.2.2.1/32", "e0"));
        dp.add_node("r1".into(), &f1, BTreeSet::from([addr("2.2.2.1")]), true);
        dp.add_node("r2".into(), &f2, BTreeSet::from([addr("2.2.2.2")]), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp
    }

    fn full_cov() -> Coverage {
        Coverage::from_status(
            &[
                ("r1", ExtractionStatus::Fresh),
                ("r2", ExtractionStatus::Fresh),
            ]
            .into_iter()
            .map(|(n, s)| (NodeId::from(n), s))
            .collect(),
        )
    }

    #[test]
    fn first_evaluation_emits_then_settles() {
        let mut sq = StandingQueries::new();
        let dp = pair_dp();
        let cov = full_cov();
        let updates = sq.evaluate(SimTime(1_000), &dp, &cov);
        assert_eq!(updates.len(), 3, "{updates:?}");
        assert!(updates.iter().all(|u| u.verdict.holds));
        // Unchanged snapshot: no transitions, classes all cache-hit.
        let (h0, m0) = sq.cache_stats();
        assert_eq!(m0, 2);
        let updates = sq.evaluate(SimTime(2_000), &dp, &cov);
        assert!(updates.is_empty());
        let (h1, m1) = sq.cache_stats();
        assert_eq!(m1, m0, "no new class builds for an unchanged snapshot");
        assert_eq!(h1, h0 + 2);
    }

    #[test]
    fn single_node_change_invalidates_one_class_entry() {
        let mut sq = StandingQueries::new();
        let cov = full_cov();
        let dp = pair_dp();
        sq.evaluate(SimTime(1_000), &dp, &cov);
        let (_, m0) = sq.cache_stats();

        // r1 loses its route: r1's digest changes, r2's does not.
        let mut broken = pair_dp();
        if let Some(n) = broken.nodes.get_mut(&NodeId::from("r1")) {
            n.entries.clear();
        }
        let updates = sq.evaluate(SimTime(2_000), &broken, &cov);
        let (_, m1) = sq.cache_stats();
        assert_eq!(m1, m0 + 1, "exactly the changed node rebuilt its classes");
        // Reachability and blackhole-freedom flip; loop freedom holds.
        let reach = updates.iter().find(|u| u.query == "reachability").unwrap();
        assert!(!reach.verdict.holds);
        assert!(reach.verdict.detail.contains("r1 -> r2"), "{reach:?}");
        assert!(updates.iter().all(|u| u.query != "loop_freedom"));
    }

    #[test]
    fn coverage_caveats_flip_verdicts() {
        let mut sq = StandingQueries::new();
        let dp = pair_dp();
        sq.evaluate(SimTime(1_000), &dp, &full_cov());
        // Same dataplane, degraded coverage: the caveat change alone is a
        // verdict transition.
        let degraded = Coverage::from_status(
            &[
                ("r1", ExtractionStatus::Fresh),
                ("r2", ExtractionStatus::Missing("stream down".into())),
            ]
            .into_iter()
            .map(|(n, s)| (NodeId::from(n), s))
            .collect(),
        );
        let updates = sq.evaluate(SimTime(2_000), &dp, &degraded);
        assert_eq!(updates.len(), 3);
        assert!(updates.iter().all(|u| !u.verdict.caveats.is_empty()));
        // Recovery: caveats clear, another transition.
        let updates = sq.evaluate(SimTime(3_000), &dp, &full_cov());
        assert_eq!(updates.len(), 3);
        assert!(updates.iter().all(|u| u.verdict.caveats.is_empty()));
    }

    #[test]
    fn update_lines_render_deterministically() {
        let mut sq = StandingQueries::new();
        let updates = sq.evaluate(SimTime(1_000), &pair_dp(), &full_cov());
        let lines: Vec<String> = updates.iter().map(|u| u.to_string()).collect();
        assert_eq!(
            lines[0],
            "t=1000ms reachability holds=true caveats=0 — \
             all 2 covered node pairs reachable"
        );
        assert!(
            lines[2].contains("blackhole_freedom holds=true"),
            "{lines:?}"
        );
    }
}
