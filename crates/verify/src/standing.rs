//! Standing queries: invariants verified continuously, re-evaluated
//! incrementally.
//!
//! A one-shot query answers once and forgets; continuous verification
//! keeps a set of invariants *standing* against a stream of dataplane
//! snapshots and reports only when a verdict changes. Re-evaluation is
//! incremental at two levels:
//!
//! - **Class level:** every evaluation rebuilds its [`ForwardingAnalysis`]
//!   through one shared [`ClassCache`], so a node whose FIB digest is
//!   unchanged reuses its effective classes and only nodes whose AFTs
//!   actually changed pay class computation. The cache's hit/miss counters
//!   are exposed ([`StandingQueries::cache_stats`]) precisely so a test
//!   can prove that a single-node resync invalidates that node alone.
//!
//! - **Pair level:** each (src, dst) reachability pair and each per-source
//!   loop/black-hole walk keeps its last answer together with the
//!   dependency set its exploration touched ([`crate::graph::DepSet`]).
//!   On the next tick the layer diffs per-node `(fib digest, up,
//!   addresses)` keys plus the link set, and re-evaluates only the pairs
//!   whose dependencies intersect the changed nodes. A quiet tick does
//!   zero pair work; a single changed node re-evaluates the pairs whose
//!   propagation crosses it — work proportional to what changed, not N².
//!   The [`StandingQueries::pair_stats`] counters make the sub-quadratic
//!   claim testable.
//!
//! Verdicts carry the coverage caveats of the snapshot they were computed
//! from: while a telemetry stream is degraded, the verdict does not
//! silently claim authority over nodes it cannot see.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

use mfv_dataplane::Dataplane;
use mfv_types::{IpSet, LinkId, NodeId, SimTime};

use crate::coverage::Coverage;
use crate::graph::{ClassCache, DepSet, ForwardingAnalysis};
use crate::queries::{
    blackholes_from_with_deps, loops_from_with_deps, owned_address_scope, reachability_with_deps,
    BlackHoleFinding, LoopFinding, ReachabilityReport,
};

/// The state of one standing invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// Does the invariant hold over the covered part of the network?
    pub holds: bool,
    /// Deterministic one-line summary of the findings.
    pub detail: String,
    /// Coverage qualifications: non-empty means the verdict does not
    /// speak for the whole network.
    pub caveats: Vec<String>,
}

/// A verdict transition: emitted only when `(holds, detail, caveats)`
/// changed since the previous evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerdictUpdate {
    pub at: SimTime,
    pub query: &'static str,
    pub verdict: Verdict,
}

impl std::fmt::Display for VerdictUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={}ms {} holds={} caveats={} — {}",
            self.at.0,
            self.query,
            self.verdict.holds,
            self.verdict.caveats.len(),
            self.verdict.detail,
        )
    }
}

/// Per-node change-detection key: a pair's cached answer survives a tick
/// only if no dependency's key changed (and no link was added/removed on a
/// dependency).
#[derive(Clone, PartialEq, Eq)]
struct NodeKey {
    digest: u64,
    up: bool,
    addresses: BTreeSet<Ipv4Addr>,
}

/// Cached answer for one (src, dst) reachability pair.
struct PairState {
    deps: Arc<DepSet>,
    /// `Some` iff the pair was not fully reachable at last evaluation.
    failed: Option<ReachabilityReport>,
}

/// Cached per-source answer for a loop or black-hole walk.
struct SrcState<T> {
    deps: Arc<DepSet>,
    findings: Vec<T>,
}

/// The standing invariants of the continuous-verification loop:
/// full-mesh reachability, loop freedom, and black-hole freedom.
#[derive(Default)]
pub struct StandingQueries {
    cache: ClassCache,
    verdicts: BTreeMap<&'static str, Verdict>,
    evaluations: u64,
    updates: u64,
    /// Change-detection keys from the previous evaluation.
    node_keys: BTreeMap<NodeId, NodeKey>,
    links: BTreeSet<LinkId>,
    /// Pair-level verdict state, keyed by the class of traffic it speaks
    /// for: (entry node, destination node) for reachability, entry node
    /// for the full-space loop walk and the owned-scope black-hole walk.
    pairs: BTreeMap<(NodeId, NodeId), PairState>,
    loop_srcs: BTreeMap<NodeId, SrcState<LoopFinding>>,
    hole_srcs: BTreeMap<NodeId, SrcState<BlackHoleFinding>>,
    /// The owned-address scope the black-hole states were computed over; a
    /// scope change invalidates all of them at once.
    hole_scope: Option<IpSet>,
    pair_evaluations: u64,
    pair_reuses: u64,
}

impl StandingQueries {
    pub fn new() -> StandingQueries {
        StandingQueries::default()
    }

    /// `(hits, misses)` of the shared class cache — the proof surface for
    /// single-node invalidation: after a content-preserving resync, hits
    /// grow and misses do not.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.cache.stats()
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// `(evaluated, reused)` pair-level work units over this instance's
    /// lifetime. One unit is a (src, dst) reachability pair or a
    /// per-source loop/black-hole walk. A quiet tick adds only reuses;
    /// this is the counter that proves re-evaluation work is proportional
    /// to changed nodes, not N².
    pub fn pair_stats(&self) -> (u64, u64) {
        (self.pair_evaluations, self.pair_reuses)
    }

    /// Current verdict per query, if evaluated at least once.
    pub fn verdicts(&self) -> &BTreeMap<&'static str, Verdict> {
        &self.verdicts
    }

    /// The nodes whose observable state differs from the previous
    /// evaluation: changed FIB digest, liveness, or addresses; present on
    /// an added/removed link; or added/removed entirely.
    #[allow(clippy::type_complexity)]
    fn changed_nodes(
        &self,
        dp: &Dataplane,
    ) -> (
        BTreeSet<NodeId>,
        BTreeMap<NodeId, NodeKey>,
        BTreeSet<LinkId>,
    ) {
        let mut keys = BTreeMap::new();
        for (name, node) in &dp.nodes {
            keys.insert(
                name.clone(),
                NodeKey {
                    digest: node.fib_digest(),
                    up: node.up,
                    addresses: node.addresses.clone(),
                },
            );
        }
        let mut changed = BTreeSet::new();
        for (name, key) in &keys {
            if self.node_keys.get(name) != Some(key) {
                changed.insert(name.clone());
            }
        }
        for name in self.node_keys.keys() {
            if !keys.contains_key(name) {
                changed.insert(name.clone());
            }
        }
        let links: BTreeSet<LinkId> = dp.links.iter().cloned().collect();
        for link in links.symmetric_difference(&self.links) {
            changed.insert(link.a.0.clone());
            changed.insert(link.b.0.clone());
        }
        (changed, keys, links)
    }

    /// Re-evaluates every standing query against `dp` and returns the
    /// verdicts that changed. Classes for unchanged nodes come from the
    /// shared cache, and pairs/walks whose dependency sets avoid every
    /// changed node reuse their previous answer outright — re-analysis
    /// cost is proportional to what changed.
    pub fn evaluate(
        &mut self,
        at: SimTime,
        dp: &Dataplane,
        coverage: &Coverage,
    ) -> Vec<VerdictUpdate> {
        self.evaluations += 1;
        let fa = ForwardingAnalysis::with_cache(dp, &self.cache);
        let caveats = coverage.caveats();
        let mut out = Vec::new();

        // On the first evaluation `node_keys` is empty, so every node
        // diffs as changed and everything below computes from scratch.
        let (changed, keys, links) = self.changed_nodes(dp);
        let dirty = |deps: &DepSet, extra: &NodeId| -> bool {
            changed.contains(extra) || deps.intersection(&changed).next().is_some()
        };

        let nodes = fa.node_names();
        let node_set: BTreeSet<NodeId> = nodes.iter().cloned().collect();
        // Drop cached state for nodes that left the snapshot.
        self.pairs
            .retain(|(s, d), _| node_set.contains(s) && node_set.contains(d));
        self.loop_srcs.retain(|s, _| node_set.contains(s));
        self.hole_srcs.retain(|s, _| node_set.contains(s));

        let mut pairs = Vec::new();
        for src in &nodes {
            for dst in &nodes {
                if src == dst {
                    continue;
                }
                let key = (src.clone(), dst.clone());
                let reusable = self.pairs.get(&key).is_some_and(|st| !dirty(&st.deps, dst));
                if reusable {
                    self.pair_reuses += 1;
                } else {
                    self.pair_evaluations += 1;
                    let (report, deps) = reachability_with_deps(&fa, src, dst);
                    let failed = (!report.fully_reachable()).then_some(report);
                    self.pairs.insert(key.clone(), PairState { deps, failed });
                }
                if let Some(st) = self.pairs.get(&key) {
                    if let Some(report) = &st.failed {
                        pairs.push(report.clone());
                    }
                }
            }
        }
        let detail = match pairs.first() {
            None => format!("all {} covered node pairs reachable", {
                let n = dp.nodes.len();
                n * n.saturating_sub(1)
            }),
            Some(first) => format!(
                "{} unreachable pair(s) (first: {} -> {})",
                pairs.len(),
                first.src,
                first.dst_node
            ),
        };
        self.consider(
            at,
            "reachability",
            Verdict {
                holds: pairs.is_empty(),
                detail,
                caveats: caveats.clone(),
            },
            &mut out,
        );

        let mut loops = Vec::new();
        for src in &nodes {
            let reusable = self
                .loop_srcs
                .get(src)
                .is_some_and(|st| !dirty(&st.deps, src));
            if reusable {
                self.pair_reuses += 1;
            } else {
                self.pair_evaluations += 1;
                let (findings, deps) = loops_from_with_deps(&fa, src);
                self.loop_srcs
                    .insert(src.clone(), SrcState { deps, findings });
            }
            if let Some(st) = self.loop_srcs.get(src) {
                loops.extend(st.findings.iter().cloned());
            }
        }
        let detail = match loops.first() {
            None => "no forwarding loops".to_string(),
            Some(first) => format!(
                "{} looping class(es) (first: from {} at {})",
                loops.len(),
                first.src,
                first.at
            ),
        };
        self.consider(
            at,
            "loop_freedom",
            Verdict {
                holds: loops.is_empty(),
                detail,
                caveats: caveats.clone(),
            },
            &mut out,
        );

        // The black-hole scope is derived from every up node's addresses;
        // if it moved, no per-source answer can be trusted.
        let owned = owned_address_scope(&fa);
        if self.hole_scope.as_ref() != Some(&owned) {
            self.hole_srcs.clear();
            self.hole_scope = Some(owned.clone());
        }
        let mut holes = Vec::new();
        for src in &nodes {
            let reusable = self
                .hole_srcs
                .get(src)
                .is_some_and(|st| !dirty(&st.deps, src));
            if reusable {
                self.pair_reuses += 1;
            } else {
                self.pair_evaluations += 1;
                let (findings, deps) = blackholes_from_with_deps(&fa, src, &owned);
                self.hole_srcs
                    .insert(src.clone(), SrcState { deps, findings });
            }
            if let Some(st) = self.hole_srcs.get(src) {
                holes.extend(st.findings.iter().cloned());
            }
        }
        let detail = match holes.first() {
            None => "no black holes toward owned addresses".to_string(),
            Some(first) => format!(
                "{} black-hole class(es) (first: from {} dropped at {})",
                holes.len(),
                first.src,
                first.dropped_at
            ),
        };
        self.consider(
            at,
            "blackhole_freedom",
            Verdict {
                holds: holes.is_empty(),
                detail,
                caveats,
            },
            &mut out,
        );

        self.node_keys = keys;
        self.links = links;
        out
    }

    fn consider(
        &mut self,
        at: SimTime,
        query: &'static str,
        verdict: Verdict,
        out: &mut Vec<VerdictUpdate>,
    ) {
        if self.verdicts.get(query) == Some(&verdict) {
            return;
        }
        self.verdicts.insert(query, verdict.clone());
        self.updates += 1;
        out.push(VerdictUpdate { at, query, verdict });
    }

    /// Flushes counters into `obs` under `verify.standing.*`. Everything
    /// here is derived from dataplane state only, so it is byte-stable
    /// across same-seed runs.
    pub fn observe_into(&self, obs: &mut mfv_obs::Obs) {
        let m = &mut obs.metrics;
        m.inc("verify.standing.evaluations", self.evaluations);
        m.inc("verify.standing.updates", self.updates);
        m.inc("verify.standing.pair_evaluations", self.pair_evaluations);
        m.inc("verify.standing.pair_reuses", self.pair_reuses);
        let (hits, misses) = self.cache.stats();
        m.inc("verify.standing.class_cache_hits", hits as u64);
        m.inc("verify.standing.class_cache_misses", misses as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
    use mfv_types::{ExtractionStatus, LinkId, NodeId, RouteProtocol};
    use std::collections::BTreeSet;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn entry(prefix: &str, iface: &str) -> FibEntry {
        FibEntry {
            prefix: prefix.parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: iface.into(),
                via: None,
            }],
        }
    }

    fn pair_dp() -> Dataplane {
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(entry("2.2.2.2/32", "e0"));
        let mut f2 = Fib::new();
        f2.insert(entry("2.2.2.1/32", "e0"));
        dp.add_node("r1".into(), &f1, BTreeSet::from([addr("2.2.2.1")]), true);
        dp.add_node("r2".into(), &f2, BTreeSet::from([addr("2.2.2.2")]), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp
    }

    fn full_cov() -> Coverage {
        Coverage::from_status(
            &[
                ("r1", ExtractionStatus::Fresh),
                ("r2", ExtractionStatus::Fresh),
            ]
            .into_iter()
            .map(|(n, s)| (NodeId::from(n), s))
            .collect(),
        )
    }

    #[test]
    fn first_evaluation_emits_then_settles() {
        let mut sq = StandingQueries::new();
        let dp = pair_dp();
        let cov = full_cov();
        let updates = sq.evaluate(SimTime(1_000), &dp, &cov);
        assert_eq!(updates.len(), 3, "{updates:?}");
        assert!(updates.iter().all(|u| u.verdict.holds));
        // Unchanged snapshot: no transitions, classes all cache-hit.
        let (h0, m0) = sq.cache_stats();
        assert_eq!(m0, 2);
        let updates = sq.evaluate(SimTime(2_000), &dp, &cov);
        assert!(updates.is_empty());
        let (h1, m1) = sq.cache_stats();
        assert_eq!(m1, m0, "no new class builds for an unchanged snapshot");
        assert_eq!(h1, h0 + 2);
    }

    #[test]
    fn single_node_change_invalidates_one_class_entry() {
        let mut sq = StandingQueries::new();
        let cov = full_cov();
        let dp = pair_dp();
        sq.evaluate(SimTime(1_000), &dp, &cov);
        let (_, m0) = sq.cache_stats();

        // r1 loses its route: r1's digest changes, r2's does not.
        let mut broken = pair_dp();
        if let Some(n) = broken.nodes.get_mut(&NodeId::from("r1")) {
            n.entries.clear();
        }
        let updates = sq.evaluate(SimTime(2_000), &broken, &cov);
        let (_, m1) = sq.cache_stats();
        assert_eq!(m1, m0 + 1, "exactly the changed node rebuilt its classes");
        // Reachability and blackhole-freedom flip; loop freedom holds.
        let reach = updates.iter().find(|u| u.query == "reachability").unwrap();
        assert!(!reach.verdict.holds);
        assert!(reach.verdict.detail.contains("r1 -> r2"), "{reach:?}");
        assert!(updates.iter().all(|u| u.query != "loop_freedom"));
    }

    #[test]
    fn coverage_caveats_flip_verdicts() {
        let mut sq = StandingQueries::new();
        let dp = pair_dp();
        sq.evaluate(SimTime(1_000), &dp, &full_cov());
        // Same dataplane, degraded coverage: the caveat change alone is a
        // verdict transition.
        let degraded = Coverage::from_status(
            &[
                ("r1", ExtractionStatus::Fresh),
                ("r2", ExtractionStatus::Missing("stream down".into())),
            ]
            .into_iter()
            .map(|(n, s)| (NodeId::from(n), s))
            .collect(),
        );
        let updates = sq.evaluate(SimTime(2_000), &dp, &degraded);
        assert_eq!(updates.len(), 3);
        assert!(updates.iter().all(|u| !u.verdict.caveats.is_empty()));
        // Recovery: caveats clear, another transition.
        let updates = sq.evaluate(SimTime(3_000), &dp, &full_cov());
        assert_eq!(updates.len(), 3);
        assert!(updates.iter().all(|u| u.verdict.caveats.is_empty()));
    }

    /// A line of `n` routers where every loopback is routed hop by hop:
    /// node i owns 10.0.i.1 and routes every other loopback left or right.
    fn line_dp_n(n: usize) -> Dataplane {
        let mut dp = Dataplane::new();
        for i in 0..n {
            let mut fib = Fib::new();
            for j in 0..n {
                if i == j {
                    continue;
                }
                let iface = if j < i { "left" } else { "right" };
                fib.insert(entry(&format!("10.0.{j}.1/32"), iface));
            }
            dp.add_node(
                NodeId::from(format!("r{i:02}").as_str()),
                &fib,
                BTreeSet::from([Ipv4Addr::new(10, 0, i as u8, 1)]),
                true,
            );
        }
        for i in 0..n.saturating_sub(1) {
            dp.add_link(LinkId::new(
                (NodeId::from(format!("r{i:02}").as_str()), "right".into()),
                (
                    NodeId::from(format!("r{:02}", i + 1).as_str()),
                    "left".into(),
                ),
            ));
        }
        dp
    }

    fn line_cov(n: usize) -> Coverage {
        Coverage::from_status(
            &(0..n)
                .map(|i| {
                    (
                        NodeId::from(format!("r{i:02}").as_str()),
                        ExtractionStatus::Fresh,
                    )
                })
                .collect(),
        )
    }

    /// The tentpole claim: re-evaluation work per tick is proportional to
    /// the changed nodes, not N². A quiet tick does zero pair work; an
    /// end-node FIB change re-evaluates O(N) pairs on an N-node line.
    #[test]
    fn pair_work_is_subquadratic_in_changes() {
        const N: usize = 12;
        let mut sq = StandingQueries::new();
        let dp = line_dp_n(N);
        let cov = line_cov(N);

        // First evaluation pays the full N(N-1) pairs + 2N walks.
        let updates = sq.evaluate(SimTime(1_000), &dp, &cov);
        assert!(updates.iter().all(|u| u.verdict.holds), "{updates:?}");
        let full = (N * (N - 1) + 2 * N) as u64;
        assert_eq!(sq.pair_stats(), (full, 0));

        // Quiet tick: everything reuses, nothing evaluates.
        sq.evaluate(SimTime(2_000), &dp, &cov);
        assert_eq!(sq.pair_stats(), (full, full));

        // One end node loses a route: only pairs and walks whose
        // dependencies cross r00 re-evaluate — O(N), far below N².
        let mut broken = line_dp_n(N);
        if let Some(node) = broken.nodes.get_mut(&NodeId::from("r00")) {
            node.entries.clear();
        }
        let updates = sq.evaluate(SimTime(3_000), &broken, &cov);
        assert!(updates.iter().any(|u| !u.verdict.holds));
        let (evals, _) = sq.pair_stats();
        let delta = evals - full;
        // Pairs touching r00 as src or dst: 2(N-1); every source's loop
        // and black-hole walk depends on r00 (the line routes everything
        // through to it): 2N. Anything near N² means incrementality broke.
        assert!(
            delta <= (4 * N) as u64,
            "expected O(N) re-evaluations, got {delta} (full pass = {full})"
        );
        // And the verdict matches a from-scratch evaluation.
        let mut fresh = StandingQueries::new();
        fresh.evaluate(SimTime(3_000), &broken, &cov);
        assert_eq!(sq.verdicts(), fresh.verdicts());
    }

    /// Cutting a link must invalidate the pairs that routed across it even
    /// though no node's FIB digest changed.
    #[test]
    fn link_cut_invalidates_crossing_pairs() {
        const N: usize = 4;
        let mut sq = StandingQueries::new();
        let dp = line_dp_n(N);
        let cov = line_cov(N);
        sq.evaluate(SimTime(1_000), &dp, &cov);
        assert!(sq.verdicts().values().all(|v| v.holds));

        // Cut the middle link r01–r02: FIBs unchanged, reachability gone.
        let mut cut = line_dp_n(N);
        cut.links
            .retain(|l| !(l.touches(&NodeId::from("r01")) && l.touches(&NodeId::from("r02"))));
        let updates = sq.evaluate(SimTime(2_000), &cut, &cov);
        let reach = updates
            .iter()
            .find(|u| u.query == "reachability")
            .expect("link cut must flip reachability");
        assert!(!reach.verdict.holds);
        let mut fresh = StandingQueries::new();
        fresh.evaluate(SimTime(2_000), &cut, &cov);
        assert_eq!(sq.verdicts(), fresh.verdicts());
    }

    #[test]
    fn update_lines_render_deterministically() {
        let mut sq = StandingQueries::new();
        let updates = sq.evaluate(SimTime(1_000), &pair_dp(), &full_cov());
        let lines: Vec<String> = updates.iter().map(|u| u.to_string()).collect();
        assert_eq!(
            lines[0],
            "t=1000ms reachability holds=true caveats=0 — \
             all 2 covered node pairs reachable"
        );
        assert!(
            lines[2].contains("blackhole_freedom holds=true"),
            "{lines:?}"
        );
    }
}
