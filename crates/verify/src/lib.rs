//! The dataplane verification engine — this workspace's counterpart to the
//! (modified) Batfish verification engine of §4.2.
//!
//! Operates purely on [`mfv_dataplane::Dataplane`] snapshots, so it is
//! backend-agnostic: feed it emulation-extracted AFT state (model-free) or a
//! model-computed dataplane (baseline) and ask the same questions —
//! which is precisely what lets the paper compare the two worlds with one
//! Differential Reachability query.
//!
//! - [`graph`] — symbolic packet-class propagation ([`ForwardingAnalysis`])
//! - [`queries`] — the query library (differential reachability,
//!   reachability, loops, black holes, multipath consistency, traceroute)
//! - [`coverage`] — coverage-qualified answers over partially-extracted
//!   snapshots (which devices a verdict does and does not speak for)
//! - [`standing`] — standing queries for continuous verification:
//!   incremental re-evaluation through a shared class cache, emitting
//!   verdict transitions instead of full reports

pub mod coverage;
pub mod graph;
pub mod queries;
pub mod standing;

/// Runs a verification query under observation: bumps the deterministic
/// counter `name` and records the query's wall latency (µs) into the
/// wall-quarantined histogram of the same name. Use a
/// `verify.query.<kind>` name so dumps group by query type.
pub fn observed_query<T>(obs: &mut mfv_obs::Obs, name: &'static str, f: impl FnOnce() -> T) -> T {
    obs.metrics.inc(name, 1);
    let timer = mfv_obs::WallTimer::start();
    let out = f();
    obs.wall.metrics.record(name, timer.elapsed_micros());
    out
}

pub use coverage::{qualified_reachability, qualified_unreachable_pairs, Coverage, Qualified};
pub use graph::{
    ClassCache, DepSet, Disposition, DispositionRows, ForwardingAnalysis, NodeClasses, Trace,
    TraceHop,
};
pub use queries::{
    blackholes_from_with_deps, deliverability_changes, detect_blackholes, detect_blackholes_with,
    detect_loops, detect_loops_with, detect_multipath_inconsistency, differential_reachability,
    differential_reachability_with, disposition_summary, loops_from_with_deps, owned_address_scope,
    reachability, reachability_with_deps, traceroute, unreachable_pairs, unreachable_pairs_with,
    BlackHoleFinding, DiffFinding, LoopFinding, ReachabilityReport,
};
pub use standing::{StandingQueries, Verdict, VerdictUpdate};
