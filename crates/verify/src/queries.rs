//! The verification query library — the Pybatfish-equivalent surface.
//!
//! Queries operate on [`Dataplane`] snapshots (backend-agnostic: emulation-
//! extracted or model-computed) and return structured findings. The
//! flagship query is [`differential_reachability`], the one the paper uses
//! for every §5 experiment.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use mfv_dataplane::Dataplane;
use mfv_types::{IpSet, NodeId};

use crate::graph::{DepSet, Disposition, ForwardingAnalysis, Trace};

/// One row of a differential-reachability report: a class of packets whose
/// fate differs between the two snapshots, for traffic entering at `src`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiffFinding {
    pub src: NodeId,
    pub dsts: IpSet,
    pub before: Disposition,
    pub after: Disposition,
}

impl std::fmt::Display for DiffFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "from {}: dst {} — was [{}], now [{}]",
            self.src, self.dsts, self.before, self.after
        )
    }
}

/// Compares packet fates between two snapshots, exhaustively over `scope`
/// (default: the full IPv4 destination space), for every source node present
/// in both. "This query type exhaustively compares network paths for all
/// possible packets across two snapshots, and surfaces cases where the
/// paths differ" (§5).
pub fn differential_reachability(
    before: &Dataplane,
    after: &Dataplane,
    scope: Option<&IpSet>,
) -> Vec<DiffFinding> {
    differential_reachability_with(
        &ForwardingAnalysis::new(before),
        &ForwardingAnalysis::new(after),
        scope,
    )
}

/// [`differential_reachability`] over prebuilt analyses. A what-if sweep
/// builds the baseline analysis once and passes it here for every variant,
/// so the baseline's dispositions (memoised inside [`ForwardingAnalysis`])
/// and per-node classes are computed a single time for the whole sweep.
pub fn differential_reachability_with(
    fa_before: &ForwardingAnalysis,
    fa_after: &ForwardingAnalysis,
    scope: Option<&IpSet>,
) -> Vec<DiffFinding> {
    let full = IpSet::full();
    let scope = scope.unwrap_or(&full);
    let mut findings = Vec::new();

    for src in fa_before.node_names() {
        if !fa_after.dataplane().nodes.contains_key(&src) {
            continue;
        }
        let rows_before = fa_before.dispositions_from_shared(&src, scope);
        let rows_after = fa_after.dispositions_from_shared(&src, scope);
        // Pairwise intersect the two partitions; differing fates are
        // findings.
        for (set_b, disp_b) in rows_before.iter() {
            for (set_a, disp_a) in rows_after.iter() {
                if disp_b == disp_a {
                    continue;
                }
                let inter = set_b.intersect(set_a);
                if inter.is_empty() {
                    continue;
                }
                findings.push(DiffFinding {
                    src: src.clone(),
                    dsts: inter,
                    before: disp_b.clone(),
                    after: disp_a.clone(),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.src, &a.before, &a.after).cmp(&(&b.src, &b.before, &b.after)));
    findings
}

/// Restricts differential findings to those where *deliverability* changed
/// (lost or gained reachability), filtering out path-only changes.
pub fn deliverability_changes(findings: &[DiffFinding]) -> Vec<&DiffFinding> {
    findings
        .iter()
        .filter(|f| f.before.is_delivered() != f.after.is_delivered())
        .collect()
}

/// Node-to-node reachability: can packets from `src` reach every address
/// `dst_node` owns?
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReachabilityReport {
    pub src: NodeId,
    pub dst_node: NodeId,
    /// Addresses of `dst_node` that are delivered.
    pub delivered: IpSet,
    /// Addresses of `dst_node` that fail, with their fates.
    pub failed: Vec<(IpSet, Disposition)>,
}

impl ReachabilityReport {
    pub fn fully_reachable(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Checks reachability from `src` to all addresses owned by `dst_node`.
pub fn reachability(
    fa: &ForwardingAnalysis,
    src: &NodeId,
    dst_node: &NodeId,
) -> ReachabilityReport {
    reachability_with_deps(fa, src, dst_node).0
}

/// [`reachability`] plus the dependency set of the exploration. The
/// answer is valid until one of the returned nodes (or `dst_node` itself,
/// whose addresses define the query's scope, or a link adjacent to a
/// dependency) changes — the reuse contract of the standing-query layer.
pub fn reachability_with_deps(
    fa: &ForwardingAnalysis,
    src: &NodeId,
    dst_node: &NodeId,
) -> (ReachabilityReport, Arc<DepSet>) {
    let mut dst_set = IpSet::empty();
    if let Some(node) = fa.dataplane().nodes.get(dst_node) {
        for a in &node.addresses {
            dst_set = dst_set.union(&IpSet::single(*a));
        }
    }
    let (rows, deps) = fa.dispositions_from_deps(src, &dst_set);
    let mut delivered = IpSet::empty();
    let mut failed = Vec::new();
    for (set, disp) in rows.iter() {
        match disp {
            Disposition::Accepted(node) if node == dst_node => {
                delivered = delivered.union(set);
            }
            _ => failed.push((set.clone(), disp.clone())),
        }
    }
    (
        ReachabilityReport {
            src: src.clone(),
            dst_node: dst_node.clone(),
            delivered,
            failed,
        },
        deps,
    )
}

/// All-pairs reachability over node loopback/owned addresses. Returns the
/// pairs that are NOT fully reachable (empty = full mesh reachability).
pub fn unreachable_pairs(dp: &Dataplane) -> Vec<ReachabilityReport> {
    unreachable_pairs_with(&ForwardingAnalysis::new(dp))
}

/// [`unreachable_pairs`] over a prebuilt analysis — the standing-query
/// path, where the analysis is rebuilt per re-evaluation with a shared
/// [`crate::ClassCache`] so only changed nodes pay class computation.
pub fn unreachable_pairs_with(fa: &ForwardingAnalysis) -> Vec<ReachabilityReport> {
    let nodes = fa.node_names();
    let mut out = Vec::new();
    for src in &nodes {
        for dst in &nodes {
            if src == dst {
                continue;
            }
            let report = reachability(fa, src, dst);
            if !report.fully_reachable() {
                out.push(report);
            }
        }
    }
    out
}

/// A forwarding loop finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopFinding {
    pub src: NodeId,
    pub dsts: IpSet,
    pub at: NodeId,
}

/// Exhaustively searches for destinations that loop, from any entry node.
pub fn detect_loops(dp: &Dataplane) -> Vec<LoopFinding> {
    detect_loops_with(&ForwardingAnalysis::new(dp))
}

/// [`detect_loops`] over a prebuilt analysis (standing-query path). Each
/// per-source walk goes through the shared class index
/// ([`ForwardingAnalysis::dispositions_from_deps`]) so repeated and
/// incremental callers share one partition per source.
pub fn detect_loops_with(fa: &ForwardingAnalysis) -> Vec<LoopFinding> {
    let mut out = Vec::new();
    for src in fa.node_names() {
        out.extend(loops_from_with_deps(fa, &src).0);
    }
    out
}

/// The looping classes for one entry node, with the walk's dependency set.
pub fn loops_from_with_deps(
    fa: &ForwardingAnalysis,
    src: &NodeId,
) -> (Vec<LoopFinding>, Arc<DepSet>) {
    let (rows, deps) = fa.dispositions_from_deps(src, &IpSet::full());
    let mut out = Vec::new();
    for (set, disp) in rows.iter() {
        if let Disposition::Loop(at) = disp {
            out.push(LoopFinding {
                src: src.clone(),
                dsts: set.clone(),
                at: at.clone(),
            });
        }
    }
    (out, deps)
}

/// A black hole: traffic toward an address some node *owns* is dropped
/// (no-route or null-route) somewhere in the network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlackHoleFinding {
    pub src: NodeId,
    pub dsts: IpSet,
    pub dropped_at: NodeId,
}

/// Searches for black holes toward owned addresses.
pub fn detect_blackholes(dp: &Dataplane) -> Vec<BlackHoleFinding> {
    detect_blackholes_with(&ForwardingAnalysis::new(dp))
}

/// The "should be reachable" space: every address owned by an up node.
/// This is the scope black-hole detection checks; the standing-query
/// layer compares it across snapshots because a scope change invalidates
/// every per-source black-hole answer at once.
pub fn owned_address_scope(fa: &ForwardingAnalysis) -> IpSet {
    let mut owned = IpSet::empty();
    for node in fa.dataplane().nodes.values() {
        if !node.up {
            continue;
        }
        for a in &node.addresses {
            owned = owned.union(&IpSet::single(*a));
        }
    }
    owned
}

/// [`detect_blackholes`] over a prebuilt analysis (standing-query path),
/// routed through the shared class index per source.
pub fn detect_blackholes_with(fa: &ForwardingAnalysis) -> Vec<BlackHoleFinding> {
    let owned = owned_address_scope(fa);
    let mut out = Vec::new();
    for src in fa.node_names() {
        out.extend(blackholes_from_with_deps(fa, &src, &owned).0);
    }
    out
}

/// The black-hole classes for one entry node over the `owned` scope, with
/// the walk's dependency set.
pub fn blackholes_from_with_deps(
    fa: &ForwardingAnalysis,
    src: &NodeId,
    owned: &IpSet,
) -> (Vec<BlackHoleFinding>, Arc<DepSet>) {
    let (rows, deps) = fa.dispositions_from_deps(src, owned);
    let mut out = Vec::new();
    for (set, disp) in rows.iter() {
        match disp {
            Disposition::NoRoute(at) | Disposition::NullRoute(at) => {
                out.push(BlackHoleFinding {
                    src: src.clone(),
                    dsts: set.clone(),
                    dropped_at: at.clone(),
                });
            }
            _ => {}
        }
    }
    (out, deps)
}

/// Classes whose fate depends on which ECMP branch a flow hashes to.
pub fn detect_multipath_inconsistency(dp: &Dataplane) -> Vec<(NodeId, IpSet)> {
    let fa = ForwardingAnalysis::new(dp);
    let mut out = Vec::new();
    for src in fa.node_names() {
        for (set, disp) in fa.dispositions_from(&src, &IpSet::full()) {
            if matches!(disp, Disposition::EcmpDivergent(_)) {
                out.push((src.clone(), set));
            }
        }
    }
    out
}

/// Single-packet traceroute (operator convenience wrapper).
pub fn traceroute(dp: &Dataplane, src: &NodeId, dst: Ipv4Addr) -> Trace {
    ForwardingAnalysis::new(dp).trace(src, dst)
}

/// Summarises delivery fractions per source node: how much of `scope` is
/// delivered / dropped / etc. Used by the experiment harness tables.
pub fn disposition_summary(
    dp: &Dataplane,
    scope: &IpSet,
) -> BTreeMap<NodeId, BTreeMap<String, u64>> {
    let fa = ForwardingAnalysis::new(dp);
    let mut out = BTreeMap::new();
    for src in fa.node_names() {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for (set, disp) in fa.dispositions_from(&src, scope) {
            let key = match disp {
                Disposition::Accepted(_) => "accepted",
                Disposition::NoRoute(_) => "no-route",
                Disposition::NullRoute(_) => "null-route",
                Disposition::ExitsNetwork(_) => "exits",
                Disposition::NodeDown(_) => "node-down",
                Disposition::Loop(_) => "loop",
                Disposition::EcmpDivergent(_) => "ecmp-divergent",
            };
            *counts.entry(key.to_string()).or_default() += set.count();
        }
        out.insert(src, counts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
    use mfv_types::{LinkId, RouteProtocol};
    use std::collections::BTreeSet;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn entry(prefix: &str, iface: &str) -> FibEntry {
        FibEntry {
            prefix: prefix.parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: iface.into(),
                via: None,
            }],
        }
    }

    /// Two routers, fully meshed routes.
    fn pair_dp() -> Dataplane {
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(entry("2.2.2.2/32", "e0"));
        let mut f2 = Fib::new();
        f2.insert(entry("2.2.2.1/32", "e0"));
        dp.add_node("r1".into(), &f1, BTreeSet::from([addr("2.2.2.1")]), true);
        dp.add_node("r2".into(), &f2, BTreeSet::from([addr("2.2.2.2")]), true);
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));
        dp
    }

    /// Same but r1 lost its route to r2.
    fn broken_pair_dp() -> Dataplane {
        let mut dp = pair_dp();
        let node = dp.nodes.get_mut(&NodeId::from("r1")).unwrap();
        node.entries.clear();
        dp
    }

    #[test]
    fn differential_reachability_flags_loss() {
        let findings = differential_reachability(&pair_dp(), &broken_pair_dp(), None);
        assert!(!findings.is_empty());
        let loss = findings
            .iter()
            .find(|f| f.src == NodeId::from("r1"))
            .expect("finding for r1");
        assert!(loss.dsts.contains(addr("2.2.2.2")));
        assert!(loss.before.is_delivered());
        assert!(!loss.after.is_delivered());
        let deliv = deliverability_changes(&findings);
        assert!(!deliv.is_empty());
    }

    #[test]
    fn differential_reachability_empty_on_identical() {
        let findings = differential_reachability(&pair_dp(), &pair_dp(), None);
        assert!(findings.is_empty());
    }

    #[test]
    fn scoped_differential_ignores_out_of_scope() {
        let scope = IpSet::single(addr("9.9.9.9")); // unrelated address
        let findings = differential_reachability(&pair_dp(), &broken_pair_dp(), Some(&scope));
        assert!(findings.is_empty());
    }

    #[test]
    fn reachability_report() {
        let dp = pair_dp();
        let fa = ForwardingAnalysis::new(&dp);
        let rep = reachability(&fa, &"r1".into(), &"r2".into());
        assert!(rep.fully_reachable());
        assert!(rep.delivered.contains(addr("2.2.2.2")));

        let broken = broken_pair_dp();
        let fa = ForwardingAnalysis::new(&broken);
        let rep = reachability(&fa, &"r1".into(), &"r2".into());
        assert!(!rep.fully_reachable());
        assert!(rep.delivered.is_empty());
    }

    #[test]
    fn unreachable_pairs_on_clean_and_broken() {
        assert!(unreachable_pairs(&pair_dp()).is_empty());
        let broken = unreachable_pairs(&broken_pair_dp());
        assert_eq!(broken.len(), 1);
        assert_eq!(broken[0].src, NodeId::from("r1"));
    }

    #[test]
    fn loop_and_blackhole_detection() {
        // r1 ↔ r2 loop for 9.9.9.9 which r3 owns (black hole none — loop).
        let mut dp = Dataplane::new();
        let mut f1 = Fib::new();
        f1.insert(entry("9.9.9.9/32", "e0"));
        let mut f2 = Fib::new();
        f2.insert(entry("9.9.9.9/32", "e0"));
        dp.add_node("r1".into(), &f1, BTreeSet::new(), true);
        dp.add_node("r2".into(), &f2, BTreeSet::new(), true);
        dp.add_node(
            "r3".into(),
            &Fib::new(),
            BTreeSet::from([addr("9.9.9.9")]),
            true,
        );
        dp.add_link(LinkId::new(
            ("r1".into(), "e0".into()),
            ("r2".into(), "e0".into()),
        ));

        let loops = detect_loops(&dp);
        assert!(loops.iter().any(|l| l.dsts.contains(addr("9.9.9.9"))));

        // r3 itself cannot reach 9.9.9.9? It owns it — accepted locally.
        // But r1/r2 traffic to r3's address loops (not a blackhole), while
        // any *other* owned address... give r1 an owned address that r2
        // lacks a route to:
        let blackholes = detect_blackholes(&dp);
        // r1→9.9.9.9 loops, so not a blackhole; r2 has no route to nothing
        // else. r3 has no route toward anything → drops at r3.
        assert!(blackholes
            .iter()
            .all(|b| b.dropped_at == NodeId::from("r3")));
    }

    #[test]
    fn disposition_summary_counts() {
        let dp = pair_dp();
        let summary = disposition_summary(&dp, &IpSet::full());
        let r1 = &summary[&NodeId::from("r1")];
        assert_eq!(r1["accepted"], 2); // own loopback + r2's
        assert_eq!(r1["no-route"], (1u64 << 32) - 2);
    }

    #[test]
    fn traceroute_wrapper() {
        let dp = pair_dp();
        let t = traceroute(&dp, &"r1".into(), addr("2.2.2.2"));
        assert!(t.disposition.is_delivered());
        assert_eq!(t.hops.len(), 2);
    }
}
