//! Property tests for the verification engine over randomly generated
//! dataplanes: exhaustiveness (every packet classified exactly once),
//! self-consistency between the symbolic engine and single-packet traces,
//! and differential-reachability identities.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;

use mfv_dataplane::Dataplane;
use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
use mfv_types::{ExtractionStatus, IpSet, LinkId, NodeId, Prefix, RouteProtocol, SimTime};
use mfv_verify::{
    differential_reachability, ClassCache, Coverage, Disposition, ForwardingAnalysis,
    StandingQueries,
};

/// A compact generator for random dataplanes: `n` nodes in a ring, each with
/// a handful of random prefix entries pointing at random neighbors (or
/// null-routed), plus owned addresses.
#[derive(Debug, Clone)]
struct DpShape {
    nodes: usize,
    /// Per node: (prefix bits, prefix len, egress choice, null?)
    entries: Vec<(u32, u8, u8, bool)>,
    owned: Vec<u8>,
}

fn arb_shape() -> impl Strategy<Value = DpShape> {
    (
        2usize..5,
        proptest::collection::vec((any::<u32>(), 8u8..=28, any::<u8>(), any::<bool>()), 0..24),
        proptest::collection::vec(any::<u8>(), 1..8),
    )
        .prop_map(|(nodes, entries, owned)| DpShape {
            nodes,
            entries,
            owned,
        })
}

fn build_dp(shape: &DpShape) -> Dataplane {
    let n = shape.nodes;
    let mut dp = Dataplane::new();
    let mut fibs: Vec<Fib> = (0..n).map(|_| Fib::new()).collect();
    let mut owned: Vec<BTreeSet<Ipv4Addr>> = vec![BTreeSet::new(); n];

    for (i, (bits, len, egress, null)) in shape.entries.iter().enumerate() {
        let node = i % n;
        let prefix = Prefix::from_bits(*bits, *len);
        let next_hops = if *null {
            vec![]
        } else {
            // Egress toward ring-left or ring-right.
            let iface = if egress % 2 == 0 { "left" } else { "right" };
            vec![FibNextHop {
                iface: iface.into(),
                via: None,
            }]
        };
        fibs[node].insert(FibEntry {
            prefix,
            proto: RouteProtocol::Isis,
            next_hops,
        });
    }
    for (i, octet) in shape.owned.iter().enumerate() {
        let node = i % n;
        owned[node].insert(Ipv4Addr::new(192, 168, node as u8, *octet));
    }

    for (i, fib) in fibs.iter().enumerate() {
        dp.add_node(
            NodeId::from(format!("n{i}").as_str()),
            fib,
            owned[i].clone(),
            true,
        );
    }
    // Ring links: n_i.right <-> n_{i+1}.left
    for i in 0..n {
        let j = (i + 1) % n;
        if n == 2 && i == 1 {
            break; // avoid reusing the same interfaces for a second link
        }
        dp.add_link(LinkId::new(
            (NodeId::from(format!("n{i}").as_str()), "right".into()),
            (NodeId::from(format!("n{j}").as_str()), "left".into()),
        ));
    }
    dp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dispositions_partition_the_scope(shape in arb_shape()) {
        let dp = build_dp(&shape);
        let fa = ForwardingAnalysis::new(&dp);
        let scope = IpSet::full();
        for src in fa.node_names() {
            let rows = fa.dispositions_from(&src, &scope);
            // Exhaustive: the classes cover the whole space...
            let total: u64 = rows.iter().map(|(s, _)| s.count()).sum();
            prop_assert_eq!(total, 1u64 << 32, "from {}", src);
            // ...and are pairwise disjoint.
            for (i, (a, _)) in rows.iter().enumerate() {
                for (b, _) in rows.iter().skip(i + 1) {
                    prop_assert!(a.intersect(b).is_empty());
                }
            }
        }
    }

    #[test]
    fn trace_agrees_with_symbolic_engine(shape in arb_shape(), probe in any::<u32>()) {
        let dp = build_dp(&shape);
        let fa = ForwardingAnalysis::new(&dp);
        let ip = Ipv4Addr::from(probe);
        for src in fa.node_names() {
            let trace = fa.trace(&src, ip);
            let rows = fa.dispositions_from(&src, &IpSet::single(ip));
            prop_assert_eq!(rows.len(), 1);
            let (_, symbolic) = &rows[0];
            // The single-packet trace follows the FIRST ECMP branch, so on
            // divergent classes it reports one concrete outcome; otherwise
            // the engines must agree exactly.
            match symbolic {
                Disposition::EcmpDivergent(_) => {}
                s => prop_assert_eq!(&trace.disposition, s, "src {} ip {}", src, ip),
            }
        }
    }

    #[test]
    fn differential_self_is_empty(shape in arb_shape()) {
        let dp = build_dp(&shape);
        let findings = differential_reachability(&dp, &dp, None);
        prop_assert!(findings.is_empty());
    }

    #[test]
    fn differential_findings_lie_in_scope(shape in arb_shape(), probe in any::<u32>()) {
        let dp_a = build_dp(&shape);
        // Perturb: drop one node's FIB.
        let mut dp_b = dp_a.clone();
        if let Some(first) = dp_b.nodes.values_mut().next() {
            first.entries.clear();
        }
        let scope = IpSet::from_prefix(&Prefix::from_bits(probe, 16));
        let findings = differential_reachability(&dp_a, &dp_b, Some(&scope));
        for f in findings {
            prop_assert!(f.dsts.subtract(&scope).is_empty(), "finding escapes scope");
        }
    }

    #[test]
    fn owned_addresses_accepted_locally(shape in arb_shape()) {
        let dp = build_dp(&shape);
        let fa = ForwardingAnalysis::new(&dp);
        for (name, node) in &dp.nodes {
            for addr in &node.addresses {
                let trace = fa.trace(name, *addr);
                prop_assert_eq!(
                    &trace.disposition,
                    &Disposition::Accepted(name.clone()),
                    "own address must be delivered locally"
                );
            }
        }
    }

    #[test]
    fn down_node_blackholes_everything(shape in arb_shape(), probe in any::<u32>()) {
        let mut dp = build_dp(&shape);
        let first = dp.nodes.keys().next().unwrap().clone();
        dp.nodes.get_mut(&first).unwrap().up = false;
        let fa = ForwardingAnalysis::new(&dp);
        let rows = fa.dispositions_from(&first, &IpSet::single(Ipv4Addr::from(probe)));
        prop_assert_eq!(rows.len(), 1);
        prop_assert_eq!(&rows[0].1, &Disposition::NodeDown(first));
    }

    // A cache warmed on one dataplane must not change the analysis of any
    // mutated variant: cached and uncached dispositions are identical for
    // every entry node, under random FIB mutations (cleared FIBs, extra
    // entries, dropped entries).
    #[test]
    fn cached_analysis_matches_uncached(
        shape in arb_shape(),
        mutations in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u32>(), 8u8..=28),
            0..4,
        ),
    ) {
        let base = build_dp(&shape);
        let mut variant = base.clone();
        for (which, action, bits, len) in &mutations {
            let names: Vec<NodeId> = variant.nodes.keys().cloned().collect();
            let name = &names[*which as usize % names.len()];
            let node = variant.nodes.get_mut(name).unwrap();
            match action % 3 {
                0 => node.entries.clear(),
                1 => node.entries.push(FibEntry {
                    prefix: Prefix::from_bits(*bits, *len),
                    proto: RouteProtocol::Static,
                    next_hops: vec![],
                }),
                _ => {
                    node.entries.pop();
                }
            }
        }

        // Warm the cache on the base dataplane, then analyse the variant
        // both through the cache and from scratch.
        let cache = ClassCache::new();
        let _warm = ForwardingAnalysis::with_cache(&base, &cache);
        let cached = ForwardingAnalysis::with_cache(&variant, &cache);
        let uncached = ForwardingAnalysis::new(&variant);
        let scope = IpSet::full();
        for src in uncached.node_names() {
            prop_assert_eq!(
                cached.dispositions_from(&src, &scope),
                uncached.dispositions_from(&src, &scope),
                "cached analysis diverged from {}",
                src
            );
        }
    }

    // The pair-level incremental standing layer must be invisible: after
    // any sequence of deltas (FIB edits, liveness flips, address churn,
    // link cuts), its verdicts are byte-identical to a from-scratch
    // evaluation of the same snapshot.
    #[test]
    fn incremental_standing_matches_from_scratch(
        shape in arb_shape(),
        deltas in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u32>(), 8u8..=28),
            1..6,
        ),
    ) {
        let mut dp = build_dp(&shape);
        let coverage_for = |dp: &Dataplane| {
            Coverage::from_status(
                &dp.nodes
                    .keys()
                    .map(|n| (n.clone(), ExtractionStatus::Fresh))
                    .collect(),
            )
        };
        let mut incremental = StandingQueries::new();
        incremental.evaluate(SimTime(0), &dp, &coverage_for(&dp));
        let mut at = 1_000;
        for (which, action, bits, len) in &deltas {
            let names: Vec<NodeId> = dp.nodes.keys().cloned().collect();
            let name = names[*which as usize % names.len()].clone();
            match action % 6 {
                0 => {
                    if let Some(node) = dp.nodes.get_mut(&name) {
                        node.entries.clear();
                    }
                }
                1 => {
                    if let Some(node) = dp.nodes.get_mut(&name) {
                        node.entries.push(FibEntry {
                            prefix: Prefix::from_bits(*bits, *len),
                            proto: RouteProtocol::Static,
                            next_hops: vec![],
                        });
                    }
                }
                2 => {
                    if let Some(node) = dp.nodes.get_mut(&name) {
                        node.entries.pop();
                    }
                }
                3 => {
                    if let Some(node) = dp.nodes.get_mut(&name) {
                        node.up = !node.up;
                    }
                }
                4 => {
                    if let Some(node) = dp.nodes.get_mut(&name) {
                        node.addresses.insert(std::net::Ipv4Addr::from(*bits));
                    }
                }
                _ => {
                    if !dp.links.is_empty() {
                        let cut = *which as usize % dp.links.len();
                        let mut i = 0;
                        dp.links.retain(|_| {
                            let keep = i != cut;
                            i += 1;
                            keep
                        });
                    }
                }
            }
            let cov = coverage_for(&dp);
            incremental.evaluate(SimTime(at), &dp, &cov);
            let mut fresh = StandingQueries::new();
            fresh.evaluate(SimTime(at), &dp, &cov);
            prop_assert_eq!(
                incremental.verdicts(),
                fresh.verdicts(),
                "incremental verdicts diverged after delta {:?}",
                (which, action, bits, len)
            );
            at += 1_000;
        }
    }
}
