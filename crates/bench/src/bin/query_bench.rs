//! Query front-end load generator: converges a snapshot, serves it through
//! the `mfv-serve` TCP front end, and replays a seeded point-query workload
//! against it, emitting `BENCH_queries.json` with per-snapshot latency
//! percentiles (p50/p99) and sustained throughput (qps).
//!
//! The workload is the operator-debugging mix: REACH pair checks, FATE
//! point lookups (three addresses per request, one of them a guaranteed
//! miss), and TRACE path walks, drawn from a seeded generator so the same
//! seed replays the same request stream byte for byte. Latency is measured
//! per request at the client (write request → full reply read), so the
//! numbers include the wire round trip, not just index lookup time.
//!
//! Flags:
//!   --smoke           six-node + 3×2 grid, 200 queries each (CI guard)
//!   --queries <n>     requests per snapshot (default 2000; smoke 200)
//!   --workers <n>     server worker threads (default 4)
//!   --seed <n>        workload + emulation seed (default 1)
//!   --out <path>      output JSON path (default BENCH_queries.json)

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufReader, BufWriter};
use std::net::{Ipv4Addr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mfv_bench::percentile_ms;
use mfv_core::{scenarios, Backend, EmulationBackend, Snapshot};
use mfv_serve::{query_once, QueryIndex, Server, ServerConfig};
use mfv_types::NodeId;

struct Args {
    smoke: bool,
    queries: usize,
    workers: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        queries: 0,
        workers: 4,
        seed: 1,
        out: "BENCH_queries.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--queries" => {
                let v = it.next().ok_or("--queries needs a value")?;
                args.queries = v.parse().map_err(|_| format!("bad --queries {v}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                args.workers = v.parse().map_err(|_| format!("bad --workers {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.queries == 0 {
        args.queries = if args.smoke { 200 } else { 2000 };
    }
    Ok(args)
}

/// The two snapshot sizes the acceptance bar tracks: the paper's six-node
/// verification topology and the §5 grid (shrunk in smoke mode so CI can
/// converge it in seconds).
fn query_scenarios(smoke: bool) -> Vec<(&'static str, Snapshot)> {
    let grid = if smoke {
        ("grid_3x2", scenarios::isis_grid(3, 2))
    } else {
        ("grid60", scenarios::isis_grid(10, 6))
    };
    vec![("a2_six_node", scenarios::six_node()), grid]
}

/// SplitMix64: the workload generator. Seeded, dependency-free, and good
/// enough to shuffle request parameters.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            return None;
        }
        items.get(self.next() as usize % items.len())
    }
}

/// Builds the seeded request stream for one snapshot: one third REACH,
/// one third FATE (with a guaranteed-miss third address), one third TRACE.
fn build_requests(
    nodes: &[NodeId],
    addresses: &[Ipv4Addr],
    count: usize,
    seed: u64,
) -> Vec<String> {
    let mut mix = Mix(seed ^ 0x71_75_65_72_79); // "query"
    let mut reqs = Vec::with_capacity(count);
    for i in 0..count {
        let (Some(src), Some(dst)) = (mix.pick(nodes), mix.pick(nodes)) else {
            break;
        };
        let (Some(a), Some(b)) = (mix.pick(addresses), mix.pick(addresses)) else {
            break;
        };
        reqs.push(match i % 3 {
            0 => format!("REACH {src} {dst}"),
            1 => format!("FATE {src} {a} {b} 203.0.113.77"),
            _ => format!("TRACE {src} {a}"),
        });
    }
    reqs
}

struct RunStats {
    nodes: usize,
    classes: usize,
    queries: usize,
    converge_ms: f64,
    warm_ms: f64,
    p50_us: u64,
    p99_us: u64,
    qps: f64,
}

/// Converges the snapshot, serves it, replays the workload over one TCP
/// connection, and reports client-observed latency and throughput.
fn run_scenario(snapshot: &Snapshot, args: &Args) -> Result<RunStats, String> {
    let backend = EmulationBackend {
        seed: args.seed,
        ..Default::default()
    };
    let t = Instant::now();
    let result = backend.compute(snapshot).map_err(|e| e.to_string())?;
    let converge_ms = t.elapsed().as_secs_f64() * 1e3;
    if !result.meta.converged {
        return Err(format!("{} did not converge", snapshot.name));
    }

    let index = Arc::new(QueryIndex::new(&result.dataplane));
    let t = Instant::now();
    let classes = index.warm();
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;

    let nodes = index.node_names();
    let addresses: Vec<Ipv4Addr> = result
        .dataplane
        .nodes
        .values()
        .flat_map(|n| n.addresses.iter().copied())
        .collect();
    let reqs = build_requests(&nodes, &addresses, args.queries, args.seed);

    let cfg = ServerConfig {
        port: 0,
        workers: args.workers,
    };
    let handle = Server::start(Arc::clone(&index), &cfg).map_err(|e| format!("bind: {e}"))?;
    let conn = TcpStream::connect(handle.addr()).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(conn);

    let mut latencies_us: Vec<u64> = Vec::with_capacity(reqs.len());
    let wall = Instant::now();
    for req in &reqs {
        let t = Instant::now();
        let (ok, payload) = query_once(&mut reader, &mut writer, req).map_err(|e| e.to_string())?;
        latencies_us.push(t.elapsed().as_micros() as u64);
        if !ok {
            return Err(format!("request '{req}' failed: {payload}"));
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    drop(reader);
    drop(writer);
    handle.shutdown();

    Ok(RunStats {
        nodes: nodes.len(),
        classes,
        queries: reqs.len(),
        converge_ms,
        warm_ms,
        p50_us: percentile_ms(&latencies_us, 50.0),
        p99_us: percentile_ms(&latencies_us, 99.0),
        qps: if elapsed > 0.0 {
            reqs.len() as f64 / elapsed
        } else {
            0.0
        },
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn render_json(args: &Args, rows: &BTreeMap<&'static str, RunStats>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mfv-query-bench/v1\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", args.smoke));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"workers\": {},\n", args.workers));
    out.push_str("  \"scenarios\": {\n");
    let last = rows.len().saturating_sub(1);
    for (i, (name, s)) in rows.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{\n"));
        out.push_str(&format!("      \"nodes\": {},\n", s.nodes));
        out.push_str(&format!("      \"classes\": {},\n", s.classes));
        out.push_str(&format!("      \"queries\": {},\n", s.queries));
        out.push_str(&format!(
            "      \"converge_ms\": {},\n",
            json_f64(s.converge_ms)
        ));
        out.push_str(&format!("      \"warm_ms\": {},\n", json_f64(s.warm_ms)));
        out.push_str(&format!("      \"latency_p50_us\": {},\n", s.p50_us));
        out.push_str(&format!("      \"latency_p99_us\": {},\n", s.p99_us));
        out.push_str(&format!("      \"qps\": {}\n", json_f64(s.qps)));
        out.push_str(if i == last { "    }\n" } else { "    },\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("query_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut rows: BTreeMap<&'static str, RunStats> = BTreeMap::new();
    for (name, snapshot) in query_scenarios(args.smoke) {
        eprintln!("==> {name}: converging + serving {} queries", args.queries);
        match run_scenario(&snapshot, &args) {
            Ok(stats) => {
                eprintln!(
                    "    {} nodes, {} classes: p50 {} us, p99 {} us, {:.0} qps",
                    stats.nodes, stats.classes, stats.p50_us, stats.p99_us, stats.qps
                );
                rows.insert(name, stats);
            }
            Err(e) => {
                eprintln!("query_bench: {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let json = render_json(&args, &rows);
    if let Err(e) = fs::write(&args.out, &json) {
        eprintln!("query_bench: write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("==> wrote {}", args.out);
    ExitCode::SUCCESS
}
