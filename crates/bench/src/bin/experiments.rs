//! Regenerates every figure/result of the paper's evaluation as
//! paper-vs-measured tables.
//!
//! ```sh
//! cargo run --release -p mfv-bench --bin experiments            # all
//! cargo run --release -p mfv-bench --bin experiments -- e1 e3   # subset
//! cargo run --release -p mfv-bench --bin experiments -- --quick # smaller E4/E5
//! ```

use mfv_bench::*;
use mfv_core::{scenarios, EmulationBackend, Snapshot};
use mfv_types::NodeId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.contains(&id);

    println!("Model-Free Verification — experiment harness");
    println!("reproducing: Krentsel et al., \"Towards Accessible Model-Free");
    println!("Verification\", HotNets '25 (see EXPERIMENTS.md for the index)\n");

    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4(quick);
    }
    if want("e5") {
        e5(quick);
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("a1") {
        a1();
    }
    if want("a2") {
        a2();
    }
    if want("a3") {
        a3();
    }
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

fn e1() {
    banner(
        "E1",
        "model-free verification uncovers reachability impact (Fig. 2)",
    );
    let r = run_e1(1);
    println!(
        "six-node network converged (baseline {} / broken {} messages)\n",
        r.base_meta.messages, r.broken_meta.messages
    );
    println!("differential reachability, working vs R2–R3-shutdown snapshots:");
    println!("  fate-changed classes: {}", r.findings.len());
    println!("  deliverability-changed classes: {}", r.lost.len());
    for (src, n) in &r.lost_by_src {
        println!("    from {src}: {n} classes lost");
    }
    paper_row(
        "loss of connectivity AS3 → AS2 discovered",
        "yes",
        if e1_as3_lost_as2(&r) {
            "yes"
        } else {
            "NO (mismatch!)"
        },
    );
    for f in r
        .lost
        .iter()
        .filter(|f| f.src == NodeId::from("r5"))
        .take(3)
    {
        println!("  example: {f}");
    }
}

fn e2() {
    banner(
        "E2",
        "model-based verification struggles with feature coverage",
    );
    let rows = run_e2();
    println!("config  total  recognized  unrecognized  material  mgmt-only");
    let (mut lo, mut hi) = (usize::MAX, 0);
    for row in &rows {
        println!(
            "{:<7} {:>5}  {:>10}  {:>12}  {:>8}  {:>9}",
            row.hostname,
            row.total_lines,
            row.recognized,
            row.unrecognized,
            row.material,
            row.management_only
        );
        lo = lo.min(row.unrecognized);
        hi = hi.max(row.unrecognized);
    }
    paper_row(
        "unrecognized lines per config",
        "38–42",
        &format!("{lo}–{hi}"),
    );
    paper_row(
        "materially-relevant unparsed features",
        "MPLS, MPLS-TE",
        "mpls/TE stanzas + isis-enable syntax",
    );
}

fn e3() {
    banner(
        "E3",
        "model-based results can be wrong or misleading (Fig. 3)",
    );
    let r = run_e3(1);
    paper_row(
        "emulation: pairwise reachability",
        "full",
        if r.emu_broken_pairs == 0 {
            "full"
        } else {
            "BROKEN (mismatch!)"
        },
    );
    let model_drops_r2_r1 = r
        .model_broken_pairs
        .iter()
        .any(|(s, d)| s == &NodeId::from("r2") && d == &NodeId::from("r1"));
    paper_row(
        "model: reachability R2 → R1",
        "dropped",
        if model_drops_r2_r1 {
            "dropped"
        } else {
            "present (mismatch!)"
        },
    );
    println!("  model broken pairs: {:?}", r.model_broken_pairs);
    println!(
        "  differential (model → emulation): {} classes deliverable only in emulation",
        r.model_false_negatives
    );
    println!(
        "  root cause: `ip address` before `no switchport` ignored by the model\n  \
         (issue #1); `isis enable` flagged invalid syntax (issue #2)"
    );
}

fn e4(quick: bool) {
    banner("E4", "emulation performance scales in size and complexity");
    println!("single e2-standard-32 machine, cEOS-shape pods (0.5 vCPU + 1 GiB):\n");
    println!("routers  scheduled  boot        convergence  messages  fib     wall");
    let sizes: &[usize] = if quick {
        &[5, 10, 20]
    } else {
        &[5, 10, 20, 40, 60]
    };
    for &n in sizes {
        let row = run_e4_size(n, 1, 1);
        println!(
            "{:>7}  {:>9}  {:>10}  {:>11}  {:>8}  {:>6}  {:?}",
            row.routers,
            if row.scheduled { "yes" } else { "NO" },
            row.boot
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            row.convergence
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            row.messages,
            row.fib_entries,
            row.wall,
        );
    }
    let over = run_e4_size(70, 1, 1);
    println!(
        "{:>7}  {:>9}  (insufficient cluster capacity — the paper's single-node wall)",
        70,
        if over.scheduled {
            "yes (mismatch!)"
        } else {
            "NO"
        }
    );
    println!();
    paper_row(
        "pods per e2-standard-32",
        "~60",
        &format!("{}", e4_capacity(1)),
    );
    paper_row(
        "machines for 1,000 devices",
        "17-node cluster",
        &format!(
            "{} pods fit on 17 (15 machines: {})",
            e4_capacity(17),
            e4_capacity(15)
        ),
    );
    let boot = run_e4_size(40, 1, 1).boot.unwrap();
    paper_row(
        "one-time startup (pull + boot), 40 routers",
        "12–17 min",
        &format!("{:.1} min", boot.as_mins_f64()),
    );
}

fn e5(quick: bool) {
    banner("E5", "convergence with production-realistic conditions");
    let nodes = if quick { 10 } else { 30 };
    println!(
        "replica: {nodes}-node multi-vendor WAN, iBGP mesh, 2 external feeds \
         at ~10k routes/s each"
    );
    println!("(the paper injects millions per peer; we sweep the synthetic feed size —");
    println!(" convergence is injection-paced, so the time extrapolates linearly)\n");
    println!("routes/feed  boot       convergence  messages  fib-entries  wall");
    let sweeps: &[usize] = if quick {
        &[2_500, 10_000]
    } else {
        &[10_000, 25_000, 50_000]
    };
    let mut last = None;
    for &routes in sweeps {
        let r = run_e5(nodes, routes, 1);
        println!(
            "{:>11}  {:>9}  {:>11}  {:>8}  {:>11}  {:?}",
            routes,
            r.boot
                .map(|d| format!("{:.1}min", d.as_mins_f64()))
                .unwrap_or_default(),
            r.convergence.map(|d| d.to_string()).unwrap_or_default(),
            r.messages,
            r.total_fib_entries,
            r.wall,
        );
        last = Some(r);
    }
    let r = last.unwrap();
    // Linear extrapolation to the paper's feed size (≈2M/peer at 10k/s).
    // Injection starts 1 s after boot completion; subtract that offset so
    // the per-route slope is clean.
    let per_route_ms = r
        .convergence
        .map(|d| (d.as_millis().saturating_sub(1_000)) as f64 / r.routes_per_feed as f64);
    let extrapolated_min = per_route_ms
        .map(|ms| ms * 2_000_000.0 / 60_000.0)
        .unwrap_or(0.0);
    paper_row(
        "convergence after config + injection",
        "~3 min (millions of routes)",
        &format!(
            "{} at {} routes; ≈{:.1} min at 2M/feed",
            r.convergence.map(|d| d.to_string()).unwrap_or_default(),
            r.routes_per_feed,
            extrapolated_min
        ),
    );
    paper_row(
        "initial startup (infra + containers)",
        "12–17 min",
        &r.boot
            .map(|d| format!("{:.1} min", d.as_mins_f64()))
            .unwrap_or_default(),
    );
}

fn e6() {
    banner("E6", "emulation fits the network-operator tooling flow");
    // Break r3 with wrong-vendor IS-IS syntax, then debug via the CLI.
    let healthy = scenarios::three_node_line_fig3();
    let broken_r3 = healthy
        .topology
        .node(&"r3".into())
        .unwrap()
        .config_text
        .replace(
            "   isis enable default\n!\n",
            "   ip router isis default\n!\n",
        );
    let snapshot: Snapshot = healthy.with_config(&"r3".into(), &broken_r3);
    let backend = EmulationBackend::default();
    let (emu, _) = backend.run(&snapshot).expect("emulation runs");
    let broken = mfv_core::unreachable_pairs(&emu.dataplane());
    println!(
        "verification: {} broken reachability pairs (expected > 0)\n",
        broken.len()
    );
    println!("operator drops into the emulated device:");
    println!("r2# show isis database");
    print!("{}", emu.cli(&"r2".into(), "show isis database").unwrap());
    println!("r3# show isis neighbors");
    print!("{}", emu.cli(&"r3".into(), "show isis neighbors").unwrap());
    paper_row(
        "debuggable with standard CLI inspection",
        "yes (SSH + show cmds)",
        "yes (show isis database / neighbors)",
    );
}

fn e7() {
    banner(
        "E7",
        "static analysis (mfv-conflint) cross-validated against emulation",
    );
    println!(
        "one seeded misconfiguration per family is planted into the clean\n\
         4-router / 2-AS base network; the static pass must flag it (right\n\
         rule, right device) and the emulator must show the runtime symptom.\n"
    );
    let rows = run_e7(0);
    let mut agreed = 0usize;
    for r in &rows {
        println!(
            "{} [{} on {}] {}",
            if r.validated { "AGREE " } else { "SPLIT " },
            r.rule,
            r.device,
            r.detail
        );
        println!(
            "    static: {} ({} finding{})",
            if r.flagged { "flagged" } else { "MISSED" },
            r.findings,
            if r.findings == 1 { "" } else { "s" }
        );
        match &r.session_state {
            Some(st) => println!(
                "    runtime: session {st}{}",
                if r.session_ok { "" } else { " (UNEXPECTED)" }
            ),
            None => println!("    runtime: no session watched"),
        }
        for e in &r.evidence {
            println!("    runtime: fib {e}");
        }
        agreed += usize::from(r.validated);
    }
    println!();
    paper_row(
        "families where both tiers agree",
        "(desired: all)",
        &format!("{agreed}/{}", rows.len()),
    );
    paper_row(
        "cheap tier catches the fault pre-boot",
        "milliseconds vs emulation",
        "yes (pure config analysis)",
    );
}

fn a1() {
    banner(
        "A1",
        "non-determinism: one emulation run = one converged state (§6)",
    );
    let seeds: Vec<u64> = (1..=8).collect();
    let r = run_a1(&seeds);
    println!(
        "anycast tie-break topology, {} seeds → {} distinct converged dataplanes",
        r.seeds.len(),
        r.distribution.len()
    );
    for (digest, seeds) in &r.distribution {
        println!("  outcome {digest:#018x}: seeds {seeds:?}");
    }
    paper_row(
        "parallel runs expose ordering-dependent outcomes",
        "proposed",
        &format!(
            "{} outcomes / {} seeds",
            r.distribution.len(),
            r.seeds.len()
        ),
    );
    paper_row(
        "reachability-level result stable across runs",
        "(desired)",
        if r.reachability_consistent {
            "yes"
        } else {
            "NO"
        },
    );
}

fn a2() {
    banner("A2", "exhaustive context search: k link cuts (§6)");
    let r = run_a2(1);
    println!(
        "six-node snapshot has {} links; contexts to emulate:",
        r.links
    );
    for (k, n) in &r.growth {
        println!("  any {k} cut(s): {n} emulation contexts");
    }
    println!(
        "\nk=1 sweep (one emulation per context, fanned out across threads):\n  \
         {} cut contexts survive, {} cause reachability loss (wall {:?})\n  \
         class cache: {} node analyses reused, {} computed",
        r.single_cut_survivals, r.single_cut_outages, r.wall, r.class_cache.0, r.class_cache.1
    );
    paper_row(
        "k-cut context growth",
        "exponential (\"overly compute intensive\")",
        "C(links, k), see table",
    );
}

fn a3() {
    banner("A3", "cross-vendor interplay bug (§2 incident)");
    let r = run_a3(7);
    println!(
        "emitter (vjunos) attaches unusual-but-valid transitive attr 213;\n\
         victim (ceos) parser crashes on it.\n"
    );
    paper_row(
        "routing process crashes observed",
        "1 (production incident)",
        &r.crashes.to_string(),
    );
    paper_row(
        "partial outage visible to verification",
        "traffic loss / partial outage",
        &format!("{} packet classes lost", r.lost_classes),
    );
    paper_row(
        "single-model baseline can analyse it",
        "no (one reference model)",
        if r.model_can_ingest {
            "yes (mismatch!)"
        } else {
            "no (vjunos unsupported)"
        },
    );
}
