//! Engine hot-path benchmark: runs the emulation engine scenario suite
//! (message fan-out, a2/e1 convergence, the §5 60-router grid) and emits
//! `BENCH_emulator.json` with median wall times and the engine's own work
//! counters (events processed, messages delivered).
//!
//! When a recorded baseline is supplied (`--baseline scripts/bench_baseline.txt`,
//! captured from the pre-overhaul engine), the report also carries the
//! event-count reduction and wall-time speedup per scenario — the numbers
//! the EXPERIMENTS.md "Engine performance" table tracks.
//!
//! Flags:
//!   --smoke             tiny grid + 1 iteration (CI bit-rot guard)
//!   --iters <n>         iterations per scenario (default 5; median reported)
//!   --out <path>        output JSON path (default BENCH_emulator.json)
//!   --baseline <path>   recorded pre-change numbers (plain `key value` lines)
//!   --obs-json <path>   dump the merged mfv-obs snapshot of the last
//!                       iteration of every scenario
//!   --obs-exclude-wall  omit the wall section from the obs dump, making it
//!                       byte-identical across same-seed runs

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use mfv_bench::{
    engine_scenarios, percentile_ms, run_engine_scenario, run_watch_scenario, watch_scenario,
    EngineRunStats, WatchRunStats,
};

struct Args {
    smoke: bool,
    iters: usize,
    out: String,
    baseline: Option<String>,
    obs_json: Option<String>,
    obs_wall: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        iters: 0,
        out: "BENCH_emulator.json".to_string(),
        baseline: None,
        obs_json: None,
        obs_wall: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                args.iters = v.parse().map_err(|_| format!("bad --iters {v}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--obs-json" => args.obs_json = Some(it.next().ok_or("--obs-json needs a value")?),
            "--obs-exclude-wall" => args.obs_wall = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 {
        args.iters = if args.smoke { 1 } else { 5 };
    }
    Ok(args)
}

/// Baseline file format: `scenario.metric value` per line, `#` comments.
fn load_baseline(path: &str) -> BTreeMap<String, f64> {
    let Ok(text) = fs::read_to_string(path) else {
        eprintln!("engine_bench: no baseline at {path} (reporting absolute numbers only)");
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(key), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("engine_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = args
        .baseline
        .as_deref()
        .map(load_baseline)
        .unwrap_or_default();

    let suite = engine_scenarios(args.smoke);
    let mut rows: Vec<String> = Vec::new();
    let mut obs = mfv_obs::Obs::new();
    let mut total_events = 0u64;
    let mut total_scheduled = 0u64;
    let mut baseline_total_events = 0.0f64;
    let mut have_full_baseline = !baseline.is_empty();

    for (name, snapshot) in &suite {
        let mut walls: Vec<f64> = Vec::new();
        let mut stats: Option<EngineRunStats> = None;
        for _ in 0..args.iters {
            let s = run_engine_scenario(snapshot, 1);
            walls.push(s.wall.as_secs_f64() * 1_000.0);
            stats = Some(s);
        }
        let stats = stats.expect("at least one iteration");
        obs.merge(stats.obs.clone());
        let wall_ms = median_ms(&mut walls);
        total_events += stats.events_processed;
        total_scheduled += stats.events_scheduled;

        let base_events = baseline.get(&format!("{name}.events")).copied();
        let base_wall = baseline.get(&format!("{name}.wall_ms")).copied();
        match base_events {
            Some(e) => baseline_total_events += e,
            None => have_full_baseline = false,
        }

        let mut row = format!(
            "    \"{name}\": {{\"wall_ms_median\": {}, \"events_processed\": {}, \"events_scheduled\": {}, \"messages_delivered\": {}, \"converged\": {}",
            json_f64(wall_ms),
            stats.events_processed,
            stats.events_scheduled,
            stats.messages_delivered,
            stats.converged,
        );
        // Pre-overhaul baselines predate the scheduled/processed split:
        // every work item went through the heap then, so the recorded
        // `.events` (events processed) equals events scheduled and the
        // reduction ratio compares like with like.
        if let Some(e) = base_events {
            row.push_str(&format!(
                ", \"baseline_events\": {e:.0}, \"event_reduction\": {}",
                json_f64(e / stats.events_scheduled.max(1) as f64)
            ));
        }
        if let Some(w) = base_wall {
            row.push_str(&format!(
                ", \"baseline_wall_ms\": {}, \"wall_speedup\": {}",
                json_f64(w),
                json_f64(w / wall_ms.max(1e-9))
            ));
        }
        row.push('}');
        rows.push(row);
        eprintln!(
            "engine_bench: {name}: {wall_ms:.1} ms median, {} processed / {} scheduled, {} messages, converged={}",
            stats.events_processed, stats.events_scheduled, stats.messages_delivered, stats.converged
        );
        if !stats.converged {
            eprintln!("engine_bench: FAIL — scenario {name} did not converge");
            return ExitCode::FAILURE;
        }
    }

    // Continuous verification under chaos. One iteration only: a watch
    // window re-runs dozens of full forwarding analyses, so repeating it
    // per --iters would dominate the suite, and every reported counter is
    // seed-deterministic anyway (only wall time would vary).
    {
        let (name, snapshot) = watch_scenario(args.smoke);
        let stats: WatchRunStats = run_watch_scenario(&snapshot, 1, args.smoke);
        let mut walls = vec![stats.wall.as_secs_f64() * 1_000.0];
        obs.merge(stats.obs.clone());
        let wall_ms = median_ms(&mut walls);
        let p50 = percentile_ms(&stats.latencies_ms, 50.0);
        let p99 = percentile_ms(&stats.latencies_ms, 99.0);
        rows.push(format!(
            "    \"{name}\": {{\"wall_ms_median\": {}, \"verdict_updates\": {}, \"verdict_latency_p50_ms\": {p50}, \"verdict_latency_p99_ms\": {p99}, \"gaps\": {}, \"resyncs\": {}, \"session_losses\": {}, \"recovered\": {}, \"converged\": {}}}",
            json_f64(wall_ms),
            stats.verdict_updates,
            stats.gaps,
            stats.resyncs,
            stats.session_losses,
            stats.recovered,
            stats.converged,
        ));
        eprintln!(
            "engine_bench: {name}: {wall_ms:.1} ms median, {} verdict updates, latency p50/p99 {p50}/{p99} ms, {} gaps, {} resyncs, recovered={}",
            stats.verdict_updates, stats.gaps, stats.resyncs, stats.recovered
        );
        if !stats.converged {
            eprintln!("engine_bench: FAIL — scenario {name} did not converge");
            return ExitCode::FAILURE;
        }
    }

    let mut doc = String::from("{\n");
    doc.push_str("  \"generated_by\": \"engine_bench\",\n");
    doc.push_str(&format!("  \"smoke\": {},\n", args.smoke));
    doc.push_str(&format!("  \"iterations\": {},\n", args.iters));
    doc.push_str("  \"scenarios\": {\n");
    doc.push_str(&rows.join(",\n"));
    doc.push_str("\n  },\n");
    doc.push_str(&format!("  \"total_events\": {total_events},\n"));
    doc.push_str(&format!("  \"total_events_scheduled\": {total_scheduled}"));
    if have_full_baseline {
        doc.push_str(&format!(
            ",\n  \"baseline_total_events\": {baseline_total_events:.0},\n  \"total_event_reduction\": {}",
            json_f64(baseline_total_events / total_scheduled.max(1) as f64)
        ));
    }
    doc.push_str("\n}\n");

    if let Err(e) = fs::write(&args.out, &doc) {
        eprintln!("engine_bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("engine_bench: wrote {}", args.out);

    if let Some(path) = &args.obs_json {
        let json = obs.to_json(args.obs_wall);
        if let Err(e) = fs::write(path, &json) {
            eprintln!("engine_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("engine_bench: wrote obs dump to {path}");
    }
    ExitCode::SUCCESS
}
