//! Engine hot-path benchmark: runs the emulation engine scenario suite
//! (message fan-out, a2/e1 convergence, the §5 60-router grid) and emits
//! `BENCH_emulator.json` with median wall times and the engine's own work
//! counters (events processed, messages delivered).
//!
//! When a recorded baseline is supplied (`--baseline scripts/bench_baseline.txt`,
//! captured from the pre-overhaul engine), the report also carries the
//! event-count reduction and wall-time speedup per scenario — the numbers
//! the EXPERIMENTS.md "Engine performance" table tracks.
//!
//! Flags:
//!   --smoke             tiny grid + 1 iteration (CI bit-rot guard)
//!   --iters <n>         iterations per scenario (default 5; median reported)
//!   --out <path>        output JSON path (default BENCH_emulator.json)
//!   --baseline <path>   recorded pre-change numbers (plain `key value` lines)
//!   --watch             also run the continuous-verification window
//!                       (watch60 re-runs dozens of full forwarding
//!                       analyses — minutes of wall time — so it is opt-in)
//!   --threads <list>    comma-separated worker counts for the sharded
//!                       scaling matrix (default 1,2,4,8)
//!   --obs-json <path>   dump the merged mfv-obs snapshot of the last
//!                       iteration of every scenario
//!   --obs-exclude-wall  omit the wall section from the obs dump, making it
//!                       byte-identical across same-seed runs

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use mfv_bench::{
    engine_scenarios, percentile_ms, run_engine_scenario, run_engine_scenario_sharded,
    run_watch_scenario, sharded_scenarios, watch_scenario, EngineRunStats, WatchRunStats,
};

struct Args {
    smoke: bool,
    iters: usize,
    out: String,
    baseline: Option<String>,
    watch: bool,
    threads: Vec<usize>,
    obs_json: Option<String>,
    obs_wall: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        iters: 0,
        out: "BENCH_emulator.json".to_string(),
        baseline: None,
        watch: false,
        threads: Vec::new(),
        obs_json: None,
        obs_wall: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--watch" => args.watch = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad --threads {v}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one count".into());
                }
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                args.iters = v.parse().map_err(|_| format!("bad --iters {v}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--obs-json" => args.obs_json = Some(it.next().ok_or("--obs-json needs a value")?),
            "--obs-exclude-wall" => args.obs_wall = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 {
        args.iters = if args.smoke { 1 } else { 5 };
    }
    if args.threads.is_empty() {
        args.threads = if args.smoke {
            vec![1, 2]
        } else {
            vec![1, 2, 4, 8]
        };
    }
    Ok(args)
}

/// Baseline file format: `scenario.metric value` per line, `#` comments.
fn load_baseline(path: &str) -> BTreeMap<String, f64> {
    let Ok(text) = fs::read_to_string(path) else {
        eprintln!("engine_bench: no baseline at {path} (reporting absolute numbers only)");
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(key), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("engine_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = args
        .baseline
        .as_deref()
        .map(load_baseline)
        .unwrap_or_default();

    let suite = engine_scenarios(args.smoke);
    let mut rows: Vec<String> = Vec::new();
    let mut obs = mfv_obs::Obs::new();
    let mut total_events = 0u64;
    let mut total_scheduled = 0u64;
    let mut baseline_total_events = 0.0f64;
    let mut have_full_baseline = !baseline.is_empty();

    for (name, snapshot) in &suite {
        let mut walls: Vec<f64> = Vec::new();
        let mut stats: Option<EngineRunStats> = None;
        for _ in 0..args.iters {
            let s = run_engine_scenario(snapshot, 1);
            walls.push(s.wall.as_secs_f64() * 1_000.0);
            stats = Some(s);
        }
        let stats = stats.expect("at least one iteration");
        obs.merge(stats.obs.clone());
        let wall_ms = median_ms(&mut walls);
        total_events += stats.events_processed;
        total_scheduled += stats.events_scheduled;

        let base_events = baseline.get(&format!("{name}.events")).copied();
        let base_wall = baseline.get(&format!("{name}.wall_ms")).copied();
        match base_events {
            Some(e) => baseline_total_events += e,
            None => have_full_baseline = false,
        }

        let mut row = format!(
            "    \"{name}\": {{\"wall_ms_median\": {}, \"events_processed\": {}, \"events_scheduled\": {}, \"messages_delivered\": {}, \"converged\": {}",
            json_f64(wall_ms),
            stats.events_processed,
            stats.events_scheduled,
            stats.messages_delivered,
            stats.converged,
        );
        // Pre-overhaul baselines predate the scheduled/processed split:
        // every work item went through the heap then, so the recorded
        // `.events` (events processed) equals events scheduled and the
        // reduction ratio compares like with like.
        if let Some(e) = base_events {
            row.push_str(&format!(
                ", \"baseline_events\": {e:.0}, \"event_reduction\": {}",
                json_f64(e / stats.events_scheduled.max(1) as f64)
            ));
        }
        if let Some(w) = base_wall {
            row.push_str(&format!(
                ", \"baseline_wall_ms\": {}, \"wall_speedup\": {}",
                json_f64(w),
                json_f64(w / wall_ms.max(1e-9))
            ));
        }
        row.push('}');
        rows.push(row);
        eprintln!(
            "engine_bench: {name}: {wall_ms:.1} ms median, {} processed / {} scheduled, {} messages, converged={}",
            stats.events_processed, stats.events_scheduled, stats.messages_delivered, stats.converged
        );
        if !stats.converged {
            eprintln!("engine_bench: FAIL — scenario {name} did not converge");
            return ExitCode::FAILURE;
        }
    }

    // Sharded-engine scaling matrix: each scenario boots on a multi-machine
    // cluster (one shard per machine) and runs to convergence once per
    // worker-thread count. Work counters and the converged dataplane digest
    // are asserted byte-identical across the whole matrix — threads are an
    // execution knob, never a behaviour knob — so only wall time varies.
    for (name, snapshot, machines, shards) in &sharded_scenarios(args.smoke) {
        let mut cells: Vec<String> = Vec::new();
        let mut reference: Option<mfv_bench::ShardedRunStats> = None;
        for &threads in &args.threads {
            let run = run_engine_scenario_sharded(snapshot, 1, *machines, threads, *shards);
            let wall_ms = run.stats.wall.as_secs_f64() * 1_000.0;
            let events_per_sec =
                run.stats.events_processed as f64 / run.stats.wall.as_secs_f64().max(1e-9);
            eprintln!(
                "engine_bench: {name} x{threads}: {wall_ms:.1} ms, {} shards, {} processed ({events_per_sec:.0} events/s), digest {:016x}, converged={}",
                run.shards, run.stats.events_processed, run.digest, run.stats.converged
            );
            if !run.stats.converged {
                eprintln!(
                    "engine_bench: FAIL — scenario {name} did not converge at {threads} threads"
                );
                return ExitCode::FAILURE;
            }
            if let Some(reference) = &reference {
                if reference.digest != run.digest
                    || reference.stats.events_processed != run.stats.events_processed
                    || reference.stats.messages_delivered != run.stats.messages_delivered
                {
                    eprintln!(
                        "engine_bench: FAIL — {name} diverged at {threads} threads (digest {:016x} vs {:016x})",
                        run.digest, reference.digest
                    );
                    return ExitCode::FAILURE;
                }
            }
            cells.push(format!(
                "\"{threads}\": {{\"wall_ms\": {}, \"events_per_sec\": {}}}",
                json_f64(wall_ms),
                json_f64(events_per_sec)
            ));
            if reference.is_none() {
                obs.merge(run.stats.obs.clone());
                reference = Some(run);
            }
        }
        // Matrix scenarios stay out of `total_events`: that counter (and
        // the pre-overhaul baseline it is compared against) covers the
        // classic single-machine suite only.
        let run = reference.expect("matrix has at least one thread count");
        rows.push(format!(
            "    \"{name}\": {{\"machines\": {machines}, \"shards\": {}, \"routers\": {}, \"digest\": \"{:016x}\", \"digest_identical_across_threads\": true, \"events_processed\": {}, \"events_scheduled\": {}, \"messages_delivered\": {}, \"converged\": {}, \"threads\": {{{}}}}}",
            run.shards,
            snapshot.topology.nodes.len(),
            run.digest,
            run.stats.events_processed,
            run.stats.events_scheduled,
            run.stats.messages_delivered,
            run.stats.converged,
            cells.join(", "),
        ));
    }

    // Continuous verification under chaos, opt-in (`--watch`): a watch
    // window re-runs dozens of full forwarding analyses (~6 min wall on
    // the full grid), so it would dominate the suite if always on. One
    // iteration only — every reported counter is seed-deterministic
    // anyway (only wall time would vary).
    if args.watch {
        let (name, snapshot) = watch_scenario(args.smoke);
        let stats: WatchRunStats = run_watch_scenario(&snapshot, 1, args.smoke);
        let mut walls = vec![stats.wall.as_secs_f64() * 1_000.0];
        obs.merge(stats.obs.clone());
        let wall_ms = median_ms(&mut walls);
        let p50 = percentile_ms(&stats.latencies_ms, 50.0);
        let p99 = percentile_ms(&stats.latencies_ms, 99.0);
        rows.push(format!(
            "    \"{name}\": {{\"wall_ms_median\": {}, \"verdict_updates\": {}, \"verdict_latency_p50_ms\": {p50}, \"verdict_latency_p99_ms\": {p99}, \"gaps\": {}, \"resyncs\": {}, \"session_losses\": {}, \"recovered\": {}, \"converged\": {}}}",
            json_f64(wall_ms),
            stats.verdict_updates,
            stats.gaps,
            stats.resyncs,
            stats.session_losses,
            stats.recovered,
            stats.converged,
        ));
        eprintln!(
            "engine_bench: {name}: {wall_ms:.1} ms median, {} verdict updates, latency p50/p99 {p50}/{p99} ms, {} gaps, {} resyncs, recovered={}",
            stats.verdict_updates, stats.gaps, stats.resyncs, stats.recovered
        );
        if !stats.converged {
            eprintln!("engine_bench: FAIL — scenario {name} did not converge");
            return ExitCode::FAILURE;
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut doc = String::from("{\n");
    doc.push_str("  \"generated_by\": \"engine_bench\",\n");
    doc.push_str(&format!("  \"smoke\": {},\n", args.smoke));
    doc.push_str(&format!("  \"iterations\": {},\n", args.iters));
    doc.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    doc.push_str(&format!(
        "  \"thread_matrix\": [{}],\n",
        args.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    doc.push_str(&format!("  \"watch_enabled\": {},\n", args.watch));
    doc.push_str("  \"scenarios\": {\n");
    doc.push_str(&rows.join(",\n"));
    doc.push_str("\n  },\n");
    doc.push_str(&format!("  \"total_events\": {total_events},\n"));
    doc.push_str(&format!("  \"total_events_scheduled\": {total_scheduled}"));
    if have_full_baseline {
        doc.push_str(&format!(
            ",\n  \"baseline_total_events\": {baseline_total_events:.0},\n  \"total_event_reduction\": {}",
            json_f64(baseline_total_events / total_scheduled.max(1) as f64)
        ));
    }
    doc.push_str("\n}\n");

    if let Err(e) = fs::write(&args.out, &doc) {
        eprintln!("engine_bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("engine_bench: wrote {}", args.out);

    if let Some(path) = &args.obs_json {
        let json = obs.to_json(args.obs_wall);
        if let Err(e) = fs::write(path, &json) {
            eprintln!("engine_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("engine_bench: wrote obs dump to {path}");
    }
    ExitCode::SUCCESS
}
