//! The experiment harness: one runner per paper artifact (§5 results E1–E6,
//! §6 ablations A1–A3). The `experiments` binary prints their outputs as
//! paper-vs-measured tables; the Criterion benches time their hot paths.

use std::collections::BTreeMap;

use mfv_core::{
    deliverability_changes, differential_reachability, scenarios, unreachable_pairs, Backend,
    BackendMeta, DiffFinding, EmulationBackend, ModelBackend, Snapshot,
};
use mfv_dataplane::Dataplane;
use mfv_emulator::{
    outcome_distribution, run_seeds, Cluster, Emulation, EmulationConfig, ShardMode,
};
use mfv_model::UnrecognizedKind;
use mfv_types::{IpSet, NodeId, SimDuration};
use mfv_vrouter::{VendorBugs, VendorProfile};

// ---------------------------------------------------------------------------
// E1 — differential reachability across a config change (Fig. 2)
// ---------------------------------------------------------------------------

pub struct E1Result {
    pub base_meta: BackendMeta,
    pub broken_meta: BackendMeta,
    pub base: Dataplane,
    pub broken: Dataplane,
    pub findings: Vec<DiffFinding>,
    /// Findings that changed deliverability (the outage set).
    pub lost: Vec<DiffFinding>,
    /// Lost classes grouped by ingress router.
    pub lost_by_src: BTreeMap<NodeId, usize>,
}

pub fn run_e1(seed: u64) -> E1Result {
    let backend = EmulationBackend::with_seed(seed);
    let base = backend.compute(&scenarios::six_node()).expect("baseline");
    let broken = backend
        .compute(&scenarios::six_node_broken())
        .expect("broken");
    let findings = differential_reachability(&base.dataplane, &broken.dataplane, None);
    let lost: Vec<DiffFinding> = deliverability_changes(&findings)
        .into_iter()
        .cloned()
        .collect();
    let mut lost_by_src = BTreeMap::new();
    for f in &lost {
        *lost_by_src.entry(f.src.clone()).or_insert(0usize) += 1;
    }
    E1Result {
        base_meta: base.meta,
        broken_meta: broken.meta,
        base: base.dataplane,
        broken: broken.dataplane,
        findings,
        lost,
        lost_by_src,
    }
}

/// The paper's headline E1 check: AS3 routers lose reachability to AS2.
pub fn e1_as3_lost_as2(result: &E1Result) -> bool {
    ["r5", "r6"].iter().all(|src| {
        result.lost.iter().any(|f| {
            f.src == NodeId::from(*src)
                && f.before.is_delivered()
                && !f.after.is_delivered()
                && (f.dsts.contains("2.2.2.3".parse().unwrap())
                    || f.dsts.contains("2.2.2.4".parse().unwrap()))
        })
    })
}

// ---------------------------------------------------------------------------
// E2 — model feature coverage (unrecognised config lines)
// ---------------------------------------------------------------------------

pub struct E2Row {
    pub hostname: String,
    pub total_lines: usize,
    pub recognized: usize,
    pub unrecognized: usize,
    /// Materially-relevant unparsed lines (MPLS/TE + invalid-syntax).
    pub material: usize,
    pub management_only: usize,
}

pub fn run_e2() -> Vec<E2Row> {
    let result = ModelBackend
        .compute(&scenarios::six_node())
        .expect("model ingests");
    result
        .meta
        .coverage
        .iter()
        .map(|report| {
            let material = report
                .unrecognized
                .iter()
                .filter(|u| {
                    mfv_config::classify_line(&u.text) == mfv_config::FeatureClass::Material
                        || u.kind == UnrecognizedKind::InvalidSyntax
                })
                .count();
            E2Row {
                hostname: report.hostname.clone(),
                total_lines: report.total_lines,
                recognized: report.recognized_lines,
                unrecognized: report.unrecognized_count(),
                material,
                management_only: report.unrecognized_count() - material,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E3 — model vs emulation divergence on the Fig. 3 line
// ---------------------------------------------------------------------------

pub struct E3Result {
    pub emu_broken_pairs: usize,
    pub model_broken_pairs: Vec<(NodeId, NodeId)>,
    /// Differential findings (model → emulation) where emulation delivers
    /// and the model does not.
    pub model_false_negatives: usize,
    pub model_dataplane: Dataplane,
    pub emu_dataplane: Dataplane,
}

pub fn run_e3(seed: u64) -> E3Result {
    let snapshot = scenarios::three_node_line_fig3();
    let emu = EmulationBackend::with_seed(seed)
        .compute(&snapshot)
        .expect("emulation");
    let model = ModelBackend.compute(&snapshot).expect("model");
    let emu_broken = unreachable_pairs(&emu.dataplane);
    let model_broken: Vec<(NodeId, NodeId)> = unreachable_pairs(&model.dataplane)
        .into_iter()
        .map(|r| (r.src, r.dst_node))
        .collect();
    let findings = differential_reachability(&model.dataplane, &emu.dataplane, None);
    let model_false_negatives = findings
        .iter()
        .filter(|f| !f.before.is_delivered() && f.after.is_delivered())
        .count();
    E3Result {
        emu_broken_pairs: emu_broken.len(),
        model_broken_pairs: model_broken,
        model_false_negatives,
        model_dataplane: model.dataplane,
        emu_dataplane: emu.dataplane,
    }
}

// ---------------------------------------------------------------------------
// E4 — emulation scalability
// ---------------------------------------------------------------------------

pub struct E4Row {
    pub routers: usize,
    pub machines: usize,
    pub scheduled: bool,
    pub boot: Option<SimDuration>,
    pub convergence: Option<SimDuration>,
    pub messages: u64,
    pub fib_entries: usize,
    pub wall: std::time::Duration,
}

pub fn run_e4_size(n: usize, machines: usize, seed: u64) -> E4Row {
    let snapshot = scenarios::isis_line(n);
    let backend = EmulationBackend {
        cluster_machines: machines,
        seed,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    match backend.run(&snapshot) {
        Ok((emu, meta)) => E4Row {
            routers: n,
            machines,
            scheduled: true,
            boot: meta.boot_time,
            convergence: meta.convergence_time,
            messages: meta.messages,
            fib_entries: emu.dataplane().total_entries(),
            wall: t.elapsed(),
        },
        Err(_) => E4Row {
            routers: n,
            machines,
            scheduled: false,
            boot: None,
            convergence: None,
            messages: 0,
            fib_entries: 0,
            wall: t.elapsed(),
        },
    }
}

/// Cluster capacity for the standard router pod shape (0.5 vCPU + 1 GiB).
pub fn e4_capacity(machines: usize) -> usize {
    Cluster::of_size(machines).capacity_for(500, 1024)
}

// ---------------------------------------------------------------------------
// E5 — convergence under production-realistic conditions
// ---------------------------------------------------------------------------

pub struct E5Result {
    pub nodes: usize,
    pub routes_per_feed: usize,
    pub boot: Option<SimDuration>,
    pub convergence: Option<SimDuration>,
    pub messages: u64,
    pub total_fib_entries: usize,
    pub wall: std::time::Duration,
}

pub fn run_e5(nodes: usize, routes_per_feed: usize, seed: u64) -> E5Result {
    let snapshot = scenarios::production_wan(nodes, 4, true, routes_per_feed);
    let backend = EmulationBackend {
        cluster_machines: 2,
        seed,
        max_sim_time: SimDuration::from_mins(240),
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let (emu, meta) = backend.run(&snapshot).expect("wan converges");
    E5Result {
        nodes,
        routes_per_feed,
        boot: meta.boot_time,
        convergence: meta.convergence_time,
        messages: meta.messages,
        total_fib_entries: emu.dataplane().total_entries(),
        wall: t.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// A1 — convergence non-determinism across seeds
// ---------------------------------------------------------------------------

pub struct A1Result {
    pub seeds: Vec<u64>,
    /// dataplane digest → seeds that produced it.
    pub distribution: BTreeMap<u64, Vec<u64>>,
    /// Do all outcomes agree at the reachability level?
    pub reachability_consistent: bool,
}

pub fn run_a1(seeds: &[u64]) -> A1Result {
    // A topology where arrival order genuinely matters: r-mid has two eBGP
    // paths to the same prefix that tie through step 7 of the decision
    // process, so the oldest-path tiebreak picks whichever arrived first.
    let snapshot = a1_topology();
    let cfg = EmulationConfig::default();
    let runs = run_seeds(&snapshot.topology, Cluster::single_node, &cfg, seeds);
    let distribution = outcome_distribution(&runs);
    // Consistency at the *service* level: the anycast address is delivered in
    // every run — which replica wins is exactly the ordering-dependent part.
    let reachability_consistent = runs.iter().all(|run| {
        let trace = mfv_verify::traceroute(
            &run.dataplane,
            &"mid".into(),
            "203.0.113.1".parse().unwrap(),
        );
        trace.disposition.is_delivered()
    });
    A1Result {
        seeds: seeds.to_vec(),
        distribution,
        reachability_consistent,
    }
}

/// mid peers with left and right (different ASes) which both originate the
/// same anycast prefix with identical attributes.
pub fn a1_topology() -> Snapshot {
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_emulator::{NodeSpec, Topology};
    use mfv_types::AsNum;
    use std::net::Ipv4Addr;

    let left = RouterSpec::new("left", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
        .iface(IfaceSpec::new(
            "Ethernet1",
            "100.64.0.0/31".parse().unwrap(),
        ))
        .ebgp("100.64.0.1".parse().unwrap(), AsNum(65000))
        .network("2.2.2.1/32".parse().unwrap())
        .network("203.0.113.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "203.0.113.1/24".parse().unwrap(),
        ));
    let right = RouterSpec::new("right", AsNum(65002), Ipv4Addr::new(2, 2, 2, 2))
        .iface(IfaceSpec::new(
            "Ethernet1",
            "100.64.0.2/31".parse().unwrap(),
        ))
        .ebgp("100.64.0.3".parse().unwrap(), AsNum(65000))
        .network("2.2.2.2/32".parse().unwrap())
        .network("203.0.113.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "203.0.113.1/24".parse().unwrap(),
        ));
    let mid = RouterSpec::new("mid", AsNum(65000), Ipv4Addr::new(2, 2, 2, 9))
        .iface(IfaceSpec::new(
            "Ethernet1",
            "100.64.0.1/31".parse().unwrap(),
        ))
        .iface(IfaceSpec::new(
            "Ethernet2",
            "100.64.0.3/31".parse().unwrap(),
        ))
        .ebgp("100.64.0.0".parse().unwrap(), AsNum(65001))
        .ebgp("100.64.0.2".parse().unwrap(), AsNum(65002))
        .network("2.2.2.9/32".parse().unwrap());

    let mut t = Topology::new("a1-anycast");
    // Node order matters for the boot model: the first-submitted pod pays
    // the image pull and becomes ready last. Submitting `mid` first makes
    // both replicas long-ready when it comes up, so the anycast race is
    // decided by message-level jitter — the ordering non-determinism under
    // study — rather than by a deterministic boot stagger.
    t.add_node(NodeSpec::from_config("mid", &mid.build()));
    t.add_node(NodeSpec::from_config("left", &left.build()));
    t.add_node(NodeSpec::from_config("right", &right.build()));
    t.add_link(("left", "Ethernet1"), ("mid", "Ethernet1"));
    t.add_link(("right", "Ethernet1"), ("mid", "Ethernet2"));
    Snapshot::new("a1-anycast", t)
}

// ---------------------------------------------------------------------------
// A2 — exhaustive context search (k link cuts)
// ---------------------------------------------------------------------------

pub struct A2Result {
    pub links: usize,
    /// (k, context count).
    pub growth: Vec<(usize, u128)>,
    /// Verdicts for the k=1 sweep.
    pub single_cut_survivals: usize,
    pub single_cut_outages: usize,
    /// `(hits, misses)` of the sweep's per-FIB class cache: hits are node
    /// analyses reused from an earlier context instead of recomputed.
    pub class_cache: (usize, usize),
    pub wall: std::time::Duration,
}

pub fn run_a2(seed: u64) -> A2Result {
    let snapshot = scenarios::six_node();
    let links = snapshot.link_ids().len();
    let growth: Vec<(usize, u128)> = (1..=4)
        .map(|k| (k, mfv_core::link_cut_context_count(links, k)))
        .collect();
    let backend = EmulationBackend::with_seed(seed);
    let contexts = mfv_core::link_cut_contexts(&snapshot, 1);
    let t = std::time::Instant::now();
    let report = mfv_core::verify_link_cuts_detailed(&snapshot, &backend, contexts, None)
        .expect("cut sweep runs");
    let verdicts: Vec<_> = report
        .verdicts
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("every context verified");
    let survivals = verdicts.iter().filter(|v| v.survives()).count();
    A2Result {
        links,
        growth,
        single_cut_survivals: survivals,
        single_cut_outages: verdicts.len() - survivals,
        class_cache: report.class_cache,
        wall: t.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// A3 — cross-vendor interplay crash
// ---------------------------------------------------------------------------

pub struct A3Result {
    pub crashes: u64,
    pub lost_classes: usize,
    pub model_can_ingest: bool,
}

pub fn run_a3(seed: u64) -> A3Result {
    let snapshot = scenarios::interplay_chain();
    let clean = EmulationBackend::with_seed(seed)
        .compute(&snapshot)
        .expect("clean");

    let mut backend = EmulationBackend::with_seed(seed);
    backend.auto_restart = false;
    backend.profiles.insert(
        "victim".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            crash_on_unknown_attr: Some(213),
            ..Default::default()
        }),
    );
    backend.profiles.insert(
        "emitter".into(),
        VendorProfile::vjunos().with_bugs(VendorBugs {
            emit_unusual_attr: Some(213),
            ..Default::default()
        }),
    );
    let buggy = backend.compute(&snapshot).expect("buggy run");
    let findings = differential_reachability(&clean.dataplane, &buggy.dataplane, None);
    let lost = deliverability_changes(&findings).len();
    A3Result {
        crashes: buggy.meta.crashes,
        lost_classes: lost,
        model_can_ingest: ModelBackend.compute(&snapshot).is_ok(),
    }
}

// ---------------------------------------------------------------------------
// Engine performance rig — the emulation engine's own hot path (message
// dispatch, polling, convergence detection), measured as wall time plus the
// engine's work counters so every future change has a perf trajectory to
// answer to. `scripts/bench.sh` runs these via the `engine_bench` binary and
// emits `BENCH_emulator.json`.
// ---------------------------------------------------------------------------

/// One engine scenario run: wall time plus the engine's own work counters.
#[derive(Clone, Debug)]
pub struct EngineRunStats {
    pub wall: std::time::Duration,
    pub converged: bool,
    pub events_processed: u64,
    /// Events pushed onto the engine's priority queue — the scheduling-cost
    /// metric the demand-driven scheduler is judged on (wake-set polls
    /// never enter the heap).
    pub events_scheduled: u64,
    pub messages_delivered: u64,
    /// Full observability snapshot of the run (metrics, phases, journal,
    /// wall) — the `--obs-json` payload of `engine_bench`.
    pub obs: mfv_obs::Obs,
}

/// The engine-bench scenario suite: a micro fan-out workload (a line where
/// every LSP floods end to end), the a2/e1 verification topologies, and the
/// §5 60-router grid. Smoke mode shrinks the grid so CI can run the rig in
/// seconds.
pub fn engine_scenarios(smoke: bool) -> Vec<(&'static str, Snapshot)> {
    let mut suite = vec![
        ("fanout_line16", scenarios::isis_line(16)),
        ("a2_six_node", scenarios::six_node()),
        ("e1_line3", scenarios::three_node_line_fig3()),
    ];
    if smoke {
        suite.push(("grid_3x2", scenarios::isis_grid(3, 2)));
    } else {
        suite.push(("grid60", scenarios::isis_grid(10, 6)));
    }
    suite
}

/// Boots the scenario on a single-machine cluster and runs it to
/// convergence, timing only the event loop (construction and validation are
/// not the hot path under measurement).
pub fn run_engine_scenario(snapshot: &Snapshot, seed: u64) -> EngineRunStats {
    let cfg = EmulationConfig {
        seed,
        ..Default::default()
    };
    let mut emu = Emulation::new(snapshot.topology.clone(), Cluster::single_node(), cfg)
        .expect("bench scenario validates");
    let t = std::time::Instant::now();
    let report = emu.run_until_converged();
    EngineRunStats {
        wall: t.elapsed(),
        converged: report.converged,
        events_processed: report.events_processed,
        events_scheduled: report.events_scheduled,
        messages_delivered: report.messages_delivered,
        obs: emu.export_obs(),
    }
}

/// One sharded-engine run: the usual stats plus the converged dataplane
/// digest (for cross-thread-count byte-identity checks) and the shard
/// count the partitioner actually produced.
pub struct ShardedRunStats {
    pub stats: EngineRunStats,
    pub digest: u64,
    pub shards: usize,
}

/// The sharded-engine scaling suite, each entry `(name, snapshot,
/// machines)`. `cluster1000` is the paper's 1,000-router deployment,
/// modelled as a 20-region WAN (50 routers per region: IS-IS + route
/// reflection inside each region, an eBGP ring between them) packed onto a
/// 17-machine cluster; `grid60_sharded` is the §5 grid cut across four
/// machines so the thread matrix has a mid-size point. Smoke mode swaps in
/// a 12-router three-region slice on two machines so CI boots the same
/// code path — region partitioning, cross-shard eBGP, policed
/// redistribution — in seconds.
pub fn sharded_scenarios(smoke: bool) -> Vec<(&'static str, Snapshot, usize, ShardMode)> {
    // A machine packs 64 router pods, so the small scenarios would collapse
    // to one placement-derived shard; they pin a Fixed cut instead so the
    // matrix exercises the barrier pool. `cluster1000` overflows 16
    // machines and uses the honest placement partition.
    if smoke {
        vec![(
            "cluster12",
            scenarios::regional_wan(3, 4),
            2,
            ShardMode::Fixed(2),
        )]
    } else {
        vec![
            (
                "grid60_sharded",
                scenarios::isis_grid(10, 6),
                4,
                ShardMode::Fixed(4),
            ),
            (
                "cluster1000",
                scenarios::regional_wan(20, 50),
                17,
                ShardMode::Auto,
            ),
        ]
    }
}

/// Like [`run_engine_scenario`], but on an `machines`-machine cluster with
/// the engine's worker pool sized to `threads` (shards follow the cluster
/// placement). Thread count is an execution knob, never a behaviour knob,
/// so callers assert the returned digest is identical across the matrix.
pub fn run_engine_scenario_sharded(
    snapshot: &Snapshot,
    seed: u64,
    machines: usize,
    threads: usize,
    shards: ShardMode,
) -> ShardedRunStats {
    let cfg = EmulationConfig {
        seed,
        threads,
        shards,
        ..Default::default()
    };
    let cluster = if machines <= 1 {
        Cluster::single_node()
    } else {
        Cluster::of_size(machines)
    };
    let mut emu =
        Emulation::new(snapshot.topology.clone(), cluster, cfg).expect("bench scenario validates");
    let t = std::time::Instant::now();
    let report = emu.run_until_converged();
    let stats = EngineRunStats {
        wall: t.elapsed(),
        converged: report.converged,
        events_processed: report.events_processed,
        events_scheduled: report.events_scheduled,
        messages_delivered: report.messages_delivered,
        obs: emu.export_obs(),
    };
    ShardedRunStats {
        stats,
        digest: emu.dataplane().digest(),
        shards: emu.shard_count(),
    }
}

// ---------------------------------------------------------------------------
// Continuous-verification rig — the watcher + standing-query loop under a
// fixed chaos schedule (link flap, routing kill, machine failure). Measures
// wall time plus the robustness counters the watcher is judged on: verdict
// latency (device change → re-verified verdict, in sim time), gap/resync
// totals, and whether coverage recovered by the end of the window.
// ---------------------------------------------------------------------------

/// One continuous-verification run: wall time plus watcher/verdict counters.
#[derive(Clone, Debug)]
pub struct WatchRunStats {
    pub wall: std::time::Duration,
    pub converged: bool,
    /// Did every stream end the window fully covered?
    pub recovered: bool,
    pub verdict_updates: u64,
    pub gaps: u64,
    pub resyncs: u64,
    pub session_losses: u64,
    /// Raw sim-time verdict latencies (ms), one per delta-triggered
    /// evaluation — exact percentiles, not histogram buckets.
    pub latencies_ms: Vec<u64>,
    pub obs: mfv_obs::Obs,
}

/// The watch-bench scenario: the §5 60-router grid watched for 60 s of sim
/// time (smoke: a 3×2 grid for 30 s). Chaos hits all three fault classes.
pub fn watch_scenario(smoke: bool) -> (&'static str, Snapshot) {
    if smoke {
        ("watch_3x2", scenarios::isis_grid(3, 2))
    } else {
        ("watch60", scenarios::isis_grid(10, 6))
    }
}

/// Runs the continuous-verification loop over `snapshot` with a fixed
/// three-fault chaos schedule and a mildly lossy telemetry stream.
pub fn run_watch_scenario(snapshot: &Snapshot, seed: u64, smoke: bool) -> WatchRunStats {
    use mfv_emulator::ChaosPlan;
    use mfv_types::SimTime;

    let link = snapshot.topology.links[0].id();
    let victim = snapshot.topology.nodes[snapshot.topology.nodes.len() / 2]
        .name
        .clone();
    // Two machines so a machine failure degrades the network instead of
    // erasing it; node-1 hosts the later-scheduled half of the pods.
    let cfg = mfv_core::WatchRunConfig {
        backend: EmulationBackend {
            cluster_machines: 2,
            seed,
            ..Default::default()
        },
        watch: mfv_mgmt::WatchConfig {
            seed,
            faults: mfv_mgmt::StreamFaultModel {
                drop_pct: 10,
                session_loss_pct: 2,
            },
            ..Default::default()
        },
        chaos: ChaosPlan::new()
            .link_flap(link, SimTime(5_000), SimDuration::from_secs(8))
            .kill_routing(victim, SimTime(20_000))
            .fail_machine("node-1", SimTime(35_000)),
        tick: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(if smoke { 30 } else { 60 }),
    };
    let mut obs = mfv_obs::Obs::new();
    let t = std::time::Instant::now();
    let report = mfv_core::run_watch(snapshot, &cfg, &mut obs).expect("watch scenario runs");
    WatchRunStats {
        wall: t.elapsed(),
        converged: report.converged,
        recovered: report.final_coverage.is_complete(),
        verdict_updates: report.verdict_updates.len() as u64,
        gaps: report.stats.gaps,
        resyncs: report.stats.resyncs,
        session_losses: report.stats.session_losses,
        latencies_ms: report.verdict_latencies_ms,
        obs,
    }
}

/// Exact percentile over raw samples (nearest-rank); 0 for an empty set.
pub fn percentile_ms(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

// ---------------------------------------------------------------------------
// E7 — static analysis cross-validated against emulation (mfv-conflint)
// ---------------------------------------------------------------------------

/// One misconfiguration family's two-tier verdict: what the injector
/// planted, what the static pass flagged, what the emulator observed.
pub struct E7Row {
    /// Injector family (`Debug` name, e.g. `EbgpAsnMismatch`).
    pub family: String,
    /// Conflint rule the family maps to (C1–C8).
    pub rule: String,
    /// Device the fault was planted on.
    pub device: String,
    /// Human description of the planted fault.
    pub detail: String,
    /// The static pass flagged the right rule on the right device.
    pub flagged: bool,
    /// Total findings conflint raised on the corrupted network.
    pub findings: usize,
    /// Observed state of the watched BGP session, if the family watches one.
    pub session_state: Option<String>,
    /// Session behaved as the injection predicted.
    pub session_ok: bool,
    /// Every FIB absence/presence expectation held.
    pub fib_ok: bool,
    /// Per-prefix evidence lines.
    pub evidence: Vec<String>,
    /// Static finding and runtime symptom agree.
    pub validated: bool,
}

/// Runs the full E7 sweep: one seeded injection per misconfiguration
/// family, each statically analysed and then emulated.
pub fn run_e7(seed: u64) -> Vec<E7Row> {
    mfv_config::SeededMisconfig::ALL
        .into_iter()
        .map(|kind| {
            let o = mfv_core::xval::cross_validate(kind, seed).expect("viable injection site");
            E7Row {
                family: format!("{kind:?}"),
                rule: o.report.rule.to_string(),
                device: o.report.device.clone(),
                detail: o.report.detail.clone(),
                flagged: o.flagged,
                findings: o.finding_count,
                session_state: o.session_state.clone(),
                session_ok: o.session_ok,
                fib_ok: o.fib_ok,
                evidence: o.fib_evidence.clone(),
                validated: o.validated(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// The full destination scope used by reachability summaries.
pub fn loopback_scope() -> IpSet {
    IpSet::from_prefix(&"2.2.2.0/24".parse().unwrap())
}

/// Prints a two-column "paper vs measured" comparison row.
pub fn paper_row(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:<22} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runner_reproduces_headline() {
        let r = run_e1(1);
        assert!(e1_as3_lost_as2(&r));
        assert!(!r.lost.is_empty());
    }

    #[test]
    fn e2_rows_in_paper_band() {
        let rows = run_e2();
        assert_eq!(rows.len(), 6);
        for row in rows {
            assert!(
                (34..=46).contains(&row.unrecognized),
                "{}: {}",
                row.hostname,
                row.unrecognized
            );
            assert!(row.material > 0, "MPLS/TE must count as material");
        }
    }

    #[test]
    fn e3_runner_shows_divergence() {
        let r = run_e3(1);
        assert_eq!(r.emu_broken_pairs, 0);
        assert!(r
            .model_broken_pairs
            .iter()
            .any(|(s, d)| s == &NodeId::from("r2") && d == &NodeId::from("r1")));
        assert!(r.model_false_negatives > 0);
    }

    #[test]
    fn e4_capacity_matches_paper() {
        assert_eq!(e4_capacity(1), 64);
        assert!(e4_capacity(17) >= 1000);
        assert!(e4_capacity(15) < 1000);
    }

    #[test]
    fn a1_multiple_outcomes_possible() {
        let r = run_a1(&[1, 2, 3, 4, 5, 6]);
        assert!(r.reachability_consistent);
        let total: usize = r.distribution.values().map(|v| v.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn a2_growth_is_combinatorial() {
        let r = run_a2(1);
        assert_eq!(r.links, 5);
        assert_eq!(r.growth[0], (1, 5));
        assert_eq!(r.growth[1], (2, 10));
        assert_eq!(r.single_cut_survivals + r.single_cut_outages, 5);
        // The chain AS topology has no redundancy: every cut breaks something.
        assert!(r.single_cut_outages > 0);
    }

    #[test]
    fn a3_crash_detected() {
        let r = run_a3(7);
        assert!(r.crashes >= 1);
        assert!(r.lost_classes > 0);
        assert!(!r.model_can_ingest);
    }
}
