//! A3: detecting the cross-vendor crash incident end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_bench::run_a3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3/interplay_crash");
    group.sample_size(10);
    group.bench_function("detect", |b| {
        b.iter(|| {
            let r = run_a3(7);
            assert!(r.crashes >= 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
