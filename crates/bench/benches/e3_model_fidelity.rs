//! E3: model-based vs model-free backend cost on the Fig. 3 line topology.

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_core::{scenarios, Backend, EmulationBackend, ModelBackend};

fn bench(c: &mut Criterion) {
    let snapshot = scenarios::three_node_line_fig3();

    c.bench_function("e3/model_backend/fig3_line", |b| {
        b.iter(|| {
            let r = ModelBackend
                .compute(std::hint::black_box(&snapshot))
                .unwrap();
            assert!(r.meta.converged);
        })
    });

    let mut group = c.benchmark_group("e3/emulation_backend");
    group.sample_size(10);
    group.bench_function("fig3_line", |b| {
        b.iter(|| {
            let r = EmulationBackend::default().compute(&snapshot).unwrap();
            assert!(r.meta.converged);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
