//! Micro-benchmarks for the data structures every query leans on: the LPM
//! trie, the header-space algebra, and the wire codecs.

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_types::{IpSet, Prefix, PrefixTrie};
use std::net::Ipv4Addr;

fn bench(c: &mut Criterion) {
    // A realistic 100k-prefix FIB shape.
    let prefixes: Vec<Prefix> = (0..100_000u32)
        .map(|i| Prefix::new(Ipv4Addr::from(0x0a00_0000 + (i << 8)), 24))
        .collect();

    c.bench_function("trie/insert_100k", |b| {
        b.iter(|| {
            let mut t = PrefixTrie::new();
            for (i, p) in prefixes.iter().enumerate() {
                t.insert(*p, i);
            }
            assert_eq!(t.len(), 100_000);
        })
    });

    let trie: PrefixTrie<usize> = prefixes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    c.bench_function("trie/lookup_100k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let ip = Ipv4Addr::from(0x0a00_0000 + ((i % 100_000) << 8) + 1);
            std::hint::black_box(trie.lookup(ip));
        })
    });

    let a = IpSet::from_ranges((0..1000u32).map(|i| (i * 1000, i * 1000 + 500)));
    let b_set = IpSet::from_ranges((0..1000u32).map(|i| (i * 1000 + 250, i * 1000 + 750)));
    c.bench_function("ipset/intersect_1k_ranges", |b| {
        b.iter(|| std::hint::black_box(a.intersect(&b_set)))
    });
    c.bench_function("ipset/subtract_1k_ranges", |b| {
        b.iter(|| std::hint::black_box(a.subtract(&b_set)))
    });

    // BGP UPDATE encode/decode at packing scale.
    use ::mfv_wire::bgp::{BgpMsg, PathAttr, UpdateMsg};
    use mfv_types::{AsNum, AsPath, Origin};
    let update = BgpMsg::Update(UpdateMsg {
        withdrawn: vec![],
        attrs: vec![
            PathAttr::Origin(Origin::Igp),
            PathAttr::AsPath(AsPath::sequence([AsNum(65001), AsNum(65002)])),
            PathAttr::NextHop(Ipv4Addr::new(10, 0, 0, 1)),
        ],
        nlri: prefixes[..2000].to_vec(),
    });
    c.bench_function("bgp/encode_2000_nlri", |b| {
        b.iter(|| std::hint::black_box(update.encode()))
    });
    let encoded = update.encode().expect("bench update fits the wire format");
    c.bench_function("bgp/decode_2000_nlri", |b| {
        b.iter(|| {
            let mut buf = encoded.clone();
            std::hint::black_box(BgpMsg::decode(&mut buf).unwrap());
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
