//! A1: cost of multi-seed parallel emulation (the §6 mitigation).

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_bench::a1_topology;
use mfv_emulator::{run_seeds, Cluster, EmulationConfig};

fn bench(c: &mut Criterion) {
    let snapshot = a1_topology();
    let mut group = c.benchmark_group("a1/parallel_seed_runs");
    group.sample_size(10);
    group.bench_function("4_seeds", |b| {
        b.iter(|| {
            let runs = run_seeds(
                &snapshot.topology,
                Cluster::single_node,
                &EmulationConfig::default(),
                &[1, 2, 3, 4],
            );
            assert_eq!(runs.len(), 4);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
