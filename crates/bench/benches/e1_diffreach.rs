//! E1: cost of the Differential Reachability query and of the full
//! model-free pipeline on the six-node Fig. 2 network.

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_core::{
    differential_reachability, differential_reachability_with, scenarios, Backend, ClassCache,
    EmulationBackend, ForwardingAnalysis,
};

fn bench(c: &mut Criterion) {
    // Precompute the two dataplanes once; the query is the hot path.
    let backend = EmulationBackend::default();
    let base = backend.compute(&scenarios::six_node()).unwrap().dataplane;
    let broken = backend
        .compute(&scenarios::six_node_broken())
        .unwrap()
        .dataplane;

    c.bench_function("e1/differential_reachability/six_node", |b| {
        b.iter(|| {
            let findings = differential_reachability(std::hint::black_box(&base), &broken, None);
            assert!(!findings.is_empty());
        })
    });

    // Same query over prebuilt analyses sharing one class cache — the shape
    // a multi-snapshot comparison (A1 outcome distributions, what-if
    // sweeps) uses.
    c.bench_function("e1/differential_reachability/six_node_cached", |b| {
        let cache = ClassCache::new();
        let fa_base = ForwardingAnalysis::with_cache(&base, &cache);
        b.iter(|| {
            let fa_broken = ForwardingAnalysis::with_cache(&broken, &cache);
            let findings =
                differential_reachability_with(std::hint::black_box(&fa_base), &fa_broken, None);
            assert!(!findings.is_empty());
        })
    });

    let mut group = c.benchmark_group("e1/pipeline");
    group.sample_size(10);
    group.bench_function("emulate_extract_six_node", |b| {
        b.iter(|| {
            let result = backend.compute(&scenarios::six_node()).unwrap();
            assert!(result.meta.converged);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
