//! E5: multi-vendor WAN convergence with external route feeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfv_bench::run_e5;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/wan_convergence");
    group.sample_size(10);
    for routes in [1_000usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("10_nodes", routes),
            &routes,
            |b, &routes| {
                b.iter(|| {
                    let r = run_e5(10, routes, 1);
                    assert!(r.convergence.is_some());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
