//! A2: what-if link-cut sweeps (one emulation per context).
//!
//! The `k2_verification` pair isolates the verification stage (variant
//! dataplanes precomputed) to show the incremental win: the cached path
//! shares the baseline analysis and per-FIB effective classes across all
//! contexts, the uncached path rebuilds everything per context.

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_core::{
    differential_reachability, differential_reachability_with, link_cut_contexts, scenarios,
    verify_link_cuts, Backend, ClassCache, EmulationBackend, ForwardingAnalysis,
};

fn bench(c: &mut Criterion) {
    let snapshot = scenarios::six_node();

    c.bench_function("a2/context_enumeration/k2", |b| {
        b.iter(|| {
            let contexts = link_cut_contexts(std::hint::black_box(&snapshot), 2);
            assert_eq!(contexts.len(), 10);
        })
    });

    // Precompute the k=2 variant dataplanes so the pair below times
    // verification only, not emulation.
    let backend = EmulationBackend::default();
    let baseline = backend.compute(&snapshot).unwrap().dataplane;
    let contexts = link_cut_contexts(&snapshot, 2);
    let variants: Vec<_> = contexts
        .iter()
        .map(|cuts| {
            backend
                .compute(&snapshot.without_links(cuts))
                .unwrap()
                .dataplane
        })
        .collect();

    // The cached path must find exactly what the uncached path finds.
    {
        let cache = ClassCache::new();
        let fa_base = ForwardingAnalysis::with_cache(&baseline, &cache);
        for v in &variants {
            let fa_v = ForwardingAnalysis::with_cache(v, &cache);
            let cached = differential_reachability_with(&fa_base, &fa_v, None);
            let uncached = differential_reachability(&baseline, v, None);
            assert_eq!(cached, uncached, "cached sweep diverged from uncached");
        }
    }

    let mut group = c.benchmark_group("a2/k2_verification");
    group.bench_function("uncached", |b| {
        b.iter(|| {
            for v in &variants {
                let findings = differential_reachability(std::hint::black_box(&baseline), v, None);
                std::hint::black_box(findings);
            }
        })
    });
    group.bench_function("cached", |b| {
        b.iter(|| {
            let cache = ClassCache::new();
            let fa_base = ForwardingAnalysis::with_cache(&baseline, &cache);
            for v in &variants {
                let fa_v = ForwardingAnalysis::with_cache(v, &cache);
                let findings = differential_reachability_with(&fa_base, &fa_v, None);
                std::hint::black_box(findings);
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("a2/single_cut_sweep");
    group.sample_size(10);
    group.bench_function("six_node_k1", |b| {
        b.iter(|| {
            let backend = EmulationBackend::default();
            let contexts = link_cut_contexts(&snapshot, 1);
            let verdicts = verify_link_cuts(&snapshot, &backend, contexts, None).unwrap();
            assert_eq!(verdicts.len(), 5);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
