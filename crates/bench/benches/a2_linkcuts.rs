//! A2: what-if link-cut sweeps (one emulation per context).

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_core::{link_cut_contexts, scenarios, verify_link_cuts, EmulationBackend};

fn bench(c: &mut Criterion) {
    let snapshot = scenarios::six_node();

    c.bench_function("a2/context_enumeration/k2", |b| {
        b.iter(|| {
            let contexts = link_cut_contexts(std::hint::black_box(&snapshot), 2);
            assert_eq!(contexts.len(), 10);
        })
    });

    let mut group = c.benchmark_group("a2/single_cut_sweep");
    group.sample_size(10);
    group.bench_function("six_node_k1", |b| {
        b.iter(|| {
            let backend = EmulationBackend::default();
            let contexts = link_cut_contexts(&snapshot, 1);
            let verdicts = verify_link_cuts(&snapshot, &backend, contexts, None).unwrap();
            assert_eq!(verdicts.len(), 5);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
