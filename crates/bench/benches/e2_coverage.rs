//! E2: model-parser coverage accounting over production configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use mfv_core::scenarios;

fn bench(c: &mut Criterion) {
    let snapshot = scenarios::six_node();
    let configs: Vec<String> = snapshot
        .topology
        .nodes
        .iter()
        .map(|n| n.config_text.clone())
        .collect();

    c.bench_function("e2/model_parse_coverage/six_configs", |b| {
        b.iter(|| {
            let mut total_unrecognized = 0;
            for text in &configs {
                let (_, report) = mfv_model::parse(std::hint::black_box(text)).unwrap();
                total_unrecognized += report.unrecognized_count();
            }
            assert!(total_unrecognized > 0);
        })
    });

    c.bench_function("e2/vendor_parse/six_configs", |b| {
        b.iter(|| {
            for text in &configs {
                let parsed = mfv_config::ceos::parse(std::hint::black_box(text)).unwrap();
                assert!(parsed.warnings.is_empty());
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
