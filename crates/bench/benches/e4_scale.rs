//! E4: emulation bring-up + convergence across topology sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfv_bench::run_e4_size;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/emulate_isis_line");
    group.sample_size(10);
    for n in [5usize, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let row = run_e4_size(n, 1, 1);
                assert!(row.scheduled);
            })
        });
    }
    group.finish();

    c.bench_function("e4/cluster_capacity/17_machines", |b| {
        b.iter(|| assert!(mfv_bench::e4_capacity(std::hint::black_box(17)) >= 1000))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
