//! OpenConfig-style Abstract Forwarding Table (AFT) data model.
//!
//! The model-free pipeline's extraction step: after convergence, each
//! router's FIB is dumped "in the common OpenConfig data models, which all
//! vendor images now support, allowing this step to be fully vendor-agnostic"
//! (§4.1). The structure below mirrors the `openconfig-aft` split into
//! entries → next-hop-groups → next-hops, keyed exactly as gNMI paths would
//! key them, and round-trips through JSON.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
use mfv_types::{Prefix, RouteProtocol};

/// One `ipv4-unicast` AFT entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AftIpv4Entry {
    pub prefix: Prefix,
    /// Reference into [`Aft::next_hop_groups`].
    pub next_hop_group: u64,
    /// Origin protocol (an `openconfig-aft` state leaf).
    pub origin_protocol: RouteProtocol,
}

/// A next-hop group: a set of next-hop ids (ECMP members).
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AftNextHopGroup {
    pub id: u64,
    pub next_hops: Vec<u64>,
}

/// One concrete next hop.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AftNextHop {
    pub id: u64,
    /// Egress interface name.
    pub interface: String,
    /// Gateway address; absent for directly-attached destinations.
    pub ip_address: Option<Ipv4Addr>,
}

/// A device's complete AFT snapshot.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Aft {
    pub ipv4_unicast: Vec<AftIpv4Entry>,
    pub next_hop_groups: BTreeMap<u64, AftNextHopGroup>,
    pub next_hops: BTreeMap<u64, AftNextHop>,
}

impl Aft {
    /// Builds an AFT from a FIB, deduplicating next hops and groups the way
    /// real AFT exports do (shared groups across prefixes).
    pub fn from_fib(fib: &Fib) -> Aft {
        let mut aft = Aft::default();
        let mut nh_ids: BTreeMap<FibNextHop, u64> = BTreeMap::new();
        let mut group_ids: BTreeMap<Vec<u64>, u64> = BTreeMap::new();

        for entry in fib.entries() {
            let mut members = Vec::with_capacity(entry.next_hops.len());
            for nh in &entry.next_hops {
                let next_id = nh_ids.len() as u64 + 1;
                let id = *nh_ids.entry(nh.clone()).or_insert(next_id);
                if id == next_id {
                    aft.next_hops.insert(
                        id,
                        AftNextHop {
                            id,
                            interface: nh.iface.to_string(),
                            ip_address: nh.via,
                        },
                    );
                }
                members.push(id);
            }
            // Groups are keyed by the ordered member list: preserving the
            // FIB's next-hop order makes the round-trip exactly lossless,
            // which the pipeline's extraction check relies on.
            let next_gid = group_ids.len() as u64 + 1;
            let gid = *group_ids.entry(members.clone()).or_insert(next_gid);
            if gid == next_gid {
                aft.next_hop_groups.insert(
                    gid,
                    AftNextHopGroup {
                        id: gid,
                        next_hops: members,
                    },
                );
            }
            aft.ipv4_unicast.push(AftIpv4Entry {
                prefix: entry.prefix,
                next_hop_group: gid,
                origin_protocol: entry.proto,
            });
        }
        aft
    }

    /// Reconstructs FIB entries from the AFT (the verifier-side ingestion:
    /// the paper's 3,300-line Batfish modification is exactly this step).
    pub fn to_fib(&self) -> Fib {
        let mut fib = Fib::new();
        for e in &self.ipv4_unicast {
            let group = self.next_hop_groups.get(&e.next_hop_group);
            let next_hops = group
                .map(|g| {
                    g.next_hops
                        .iter()
                        .filter_map(|id| self.next_hops.get(id))
                        .map(|nh| FibNextHop {
                            iface: nh.interface.as_str().into(),
                            via: nh.ip_address,
                        })
                        .collect()
                })
                .unwrap_or_default();
            fib.insert(FibEntry {
                prefix: e.prefix,
                proto: e.origin_protocol,
                next_hops,
            });
        }
        fib
    }

    /// Number of ipv4 entries.
    pub fn len(&self) -> usize {
        self.ipv4_unicast.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ipv4_unicast.is_empty()
    }

    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    pub fn from_json(s: &str) -> Result<Aft, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib() -> Fib {
        let mut fib = Fib::new();
        fib.insert(FibEntry {
            prefix: "10.0.0.0/31".parse().unwrap(),
            proto: RouteProtocol::Connected,
            next_hops: vec![FibNextHop {
                iface: "eth0".into(),
                via: None,
            }],
        });
        fib.insert(FibEntry {
            prefix: "2.2.2.2/32".parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: "eth0".into(),
                via: Some("10.0.0.1".parse().unwrap()),
            }],
        });
        fib.insert(FibEntry {
            prefix: "2.2.2.3/32".parse().unwrap(),
            proto: RouteProtocol::Isis,
            next_hops: vec![FibNextHop {
                iface: "eth0".into(),
                via: Some("10.0.0.1".parse().unwrap()),
            }],
        });
        fib
    }

    #[test]
    fn fib_aft_fib_roundtrip() {
        let original = fib();
        let aft = Aft::from_fib(&original);
        let back = aft.to_fib();
        assert!(back.same_as(&original));
    }

    #[test]
    fn shared_next_hops_are_deduplicated() {
        let aft = Aft::from_fib(&fib());
        // Two IS-IS routes share one (iface, via) → 2 distinct next hops
        // total, 2 groups (one with via, one without).
        assert_eq!(aft.next_hops.len(), 2);
        assert_eq!(aft.next_hop_groups.len(), 2);
        assert_eq!(aft.len(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let aft = Aft::from_fib(&fib());
        let js = aft.to_json().unwrap();
        let back = Aft::from_json(&js).unwrap();
        assert_eq!(back, aft);
    }

    #[test]
    fn empty_fib_empty_aft() {
        let aft = Aft::from_fib(&Fib::new());
        assert!(aft.is_empty());
        assert!(aft.to_fib().is_empty());
    }

    #[test]
    fn discard_route_yields_empty_group() {
        let mut f = Fib::new();
        f.insert(FibEntry {
            prefix: "192.0.2.0/24".parse().unwrap(),
            proto: RouteProtocol::Static,
            next_hops: vec![],
        });
        let aft = Aft::from_fib(&f);
        let back = aft.to_fib();
        assert!(back.same_as(&f));
    }
}
