//! A resilient gNMI collector: retries, backoff, and graceful degradation.
//!
//! The naive extraction path assumes every Get succeeds on the first try.
//! Real management planes time out, return transient errors, and serve
//! cached state. This module models that RPC path ([`RpcFailureModel`]) and
//! wraps extraction in a [`Collector`] that retries with capped exponential
//! backoff plus seeded jitter, gives up at a per-node deadline, and records
//! a per-node [`ExtractionStatus`] instead of aborting — verification then
//! proceeds over the covered subset (§4.1's extraction step, hardened).
//!
//! Failure decisions are deterministic in `(seed, node, attempt)`, so a
//! chaos run replays bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mfv_types::{ExtractionStatus, NodeId, SimDuration};
use mfv_vrouter::VirtualRouter;

use crate::gnmi::Telemetry;

/// Virtual cost of one answered RPC (success or fast error).
const RPC_COST: SimDuration = SimDuration::from_millis(50);
/// Virtual cost of an RPC that runs into its client-side timeout.
const RPC_TIMEOUT: SimDuration = SimDuration::from_secs(2);

/// Simulated failure model for the management-plane RPC path.
///
/// All knobs default to off, which reproduces the original always-succeeds
/// behaviour exactly.
#[derive(Clone, Debug, Default)]
pub struct RpcFailureModel {
    /// Seed for per-attempt failure rolls and backoff jitter.
    pub seed: u64,
    /// Percent of RPCs that hit the client-side timeout (slow failure).
    pub timeout_pct: u8,
    /// Percent of RPCs that fail fast with a transient error.
    pub transient_error_pct: u8,
    /// Nodes whose RPCs always fail — extraction exhausts its retry budget.
    pub force_fail: BTreeSet<NodeId>,
    /// Nodes answering from a telemetry cache this much behind the live
    /// dataplane; their extraction succeeds but is tagged stale.
    pub stale: BTreeMap<NodeId, SimDuration>,
    /// Treat a device whose routing process is down as unreachable over the
    /// management plane too (some platforms share fate between control and
    /// management planes). Off by default: a crashed process usually leaves
    /// gNMI up, reporting `up == false` with an empty AFT.
    pub down_is_missing: bool,
}

impl RpcFailureModel {
    pub fn is_noop(&self) -> bool {
        self.timeout_pct == 0
            && self.transient_error_pct == 0
            && self.force_fail.is_empty()
            && self.stale.is_empty()
            && !self.down_is_missing
    }
}

/// Retry policy for the collector.
#[derive(Clone, Debug)]
pub struct CollectorConfig {
    /// Attempts per node before giving up.
    pub max_attempts: u32,
    /// First retry delay; doubles each attempt.
    pub base_backoff: SimDuration,
    /// Ceiling on any single retry delay.
    pub max_backoff: SimDuration,
    /// Total virtual time budget per node (RPC costs + backoffs).
    pub per_node_deadline: SimDuration,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(2),
            per_node_deadline: SimDuration::from_secs(10),
        }
    }
}

impl CollectorConfig {
    /// Capped exponential backoff with seeded jitter: after attempt `k`
    /// (1-based), wait `min(base << (k-1), max)` plus up to 25% jitter.
    ///
    /// Lives on the config (not the [`Collector`]) so the Subscribe watcher
    /// can reuse the exact same delay schedule for resubscribe attempts.
    pub fn backoff_delay(&self, attempt: u32, rng: &mut ChaCha8Rng) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .base_backoff
            .as_millis()
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff.as_millis());
        let jitter = if base > 0 {
            rng.gen_range(0..=base / 4)
        } else {
            0
        };
        SimDuration::from_millis(base + jitter)
    }
}

/// Retrying, degrading AFT collector.
#[derive(Clone, Debug, Default)]
pub struct Collector {
    pub config: CollectorConfig,
    pub failures: RpcFailureModel,
}

impl Collector {
    pub fn with_failures(failures: RpcFailureModel) -> Collector {
        Collector {
            config: CollectorConfig::default(),
            failures,
        }
    }

    /// Collects telemetry from every node, retrying failures with capped
    /// exponential backoff. Never fails as a whole: nodes that cannot be
    /// extracted are reported [`ExtractionStatus::Missing`] and skipped.
    pub fn collect<'a, I>(&self, nodes: I) -> CollectionReport
    where
        I: IntoIterator<Item = (NodeId, Option<&'a VirtualRouter>)>,
    {
        let mut telemetry = BTreeMap::new();
        let mut status = BTreeMap::new();
        let mut attempts_total = 0u64;
        let mut retries_total = 0u64;
        let mut backoff_total = SimDuration::ZERO;
        let mut sim_elapsed = SimDuration::ZERO;
        let mut backoff_by_node = BTreeMap::new();
        let mut attempts_by_node = BTreeMap::new();
        for (node, router) in nodes {
            let (st, t, attempts, backoff, elapsed) = self.collect_node(&node, router);
            attempts_total += attempts as u64;
            retries_total += attempts.saturating_sub(1) as u64;
            backoff_total = backoff_total + backoff;
            sim_elapsed = sim_elapsed + elapsed;
            backoff_by_node.insert(node.clone(), backoff);
            attempts_by_node.insert(node.clone(), attempts);
            if let Some(t) = t {
                telemetry.insert(node.clone(), t);
            }
            status.insert(node, st);
        }
        CollectionReport {
            telemetry,
            status,
            attempts: attempts_total,
            retries: retries_total,
            backoff_total,
            sim_elapsed,
            backoff_by_node,
            attempts_by_node,
        }
    }

    fn collect_node(
        &self,
        node: &NodeId,
        router: Option<&VirtualRouter>,
    ) -> (
        ExtractionStatus,
        Option<Telemetry>,
        u32,
        SimDuration,
        SimDuration,
    ) {
        let Some(router) = router else {
            return (
                ExtractionStatus::Missing("no router instance".into()),
                None,
                0,
                SimDuration::ZERO,
                SimDuration::ZERO,
            );
        };
        if self.failures.down_is_missing && !router.is_running() {
            return (
                ExtractionStatus::Missing("device down".into()),
                None,
                0,
                SimDuration::ZERO,
                SimDuration::ZERO,
            );
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.failures.seed ^ node_key(node));
        let mut elapsed = SimDuration::ZERO;
        let mut backoff_waited = SimDuration::ZERO;
        let forced = self.failures.force_fail.contains(node);
        let mut attempts = 0u32;
        let mut last_error;
        loop {
            attempts += 1;
            match self.rpc_outcome(forced, &mut rng) {
                Ok(()) => {
                    // The RPC path answered; now capture the state tree. A
                    // serialisation failure is not transient — don't retry.
                    return match Telemetry::from_router(router) {
                        Ok(t) => {
                            let st = match self.failures.stale.get(node) {
                                Some(age) => ExtractionStatus::Stale(*age),
                                None => ExtractionStatus::Fresh,
                            };
                            (st, Some(t), attempts, backoff_waited, elapsed)
                        }
                        Err(e) => (
                            ExtractionStatus::Missing(e.0),
                            None,
                            attempts,
                            backoff_waited,
                            elapsed,
                        ),
                    };
                }
                Err((cost, err)) => {
                    elapsed = elapsed + cost;
                    last_error = err;
                }
            }
            if attempts >= self.config.max_attempts {
                return (
                    ExtractionStatus::Missing(format!(
                        "retry budget exhausted after {attempts} attempts (last: {last_error})"
                    )),
                    None,
                    attempts,
                    backoff_waited,
                    elapsed,
                );
            }
            let wait = self.backoff_delay(attempts, &mut rng);
            backoff_waited = backoff_waited + wait;
            elapsed = elapsed + wait;
            if elapsed >= self.config.per_node_deadline {
                return (
                    ExtractionStatus::Missing(format!(
                        "per-node deadline {} exceeded after {attempts} attempts (last: {last_error})",
                        self.config.per_node_deadline
                    )),
                    None,
                    attempts,
                    backoff_waited,
                    elapsed,
                );
            }
        }
    }

    /// One simulated RPC: `Ok` on answer, `Err((virtual cost, reason))` on
    /// failure.
    fn rpc_outcome(&self, forced: bool, rng: &mut ChaCha8Rng) -> Result<(), (SimDuration, String)> {
        // Keep the rng stream aligned across nodes whether or not the roll
        // is consulted, so force-failing one node never changes another's.
        let roll = rng.gen_range(0..100u32);
        if forced {
            return Err((RPC_TIMEOUT, "rpc timeout (forced)".into()));
        }
        if roll < self.failures.timeout_pct as u32 {
            return Err((RPC_TIMEOUT, "rpc timeout".into()));
        }
        if roll < (self.failures.timeout_pct + self.failures.transient_error_pct) as u32 {
            return Err((RPC_COST, "transient rpc error".into()));
        }
        Ok(())
    }

    /// Capped exponential backoff, delegated to the shared policy on
    /// [`CollectorConfig::backoff_delay`].
    fn backoff_delay(&self, attempt: u32, rng: &mut ChaCha8Rng) -> SimDuration {
        self.config.backoff_delay(attempt, rng)
    }
}

/// Outcome of one collection sweep.
#[derive(Clone, Debug)]
pub struct CollectionReport {
    /// State trees of the nodes that answered (fresh or stale).
    pub telemetry: BTreeMap<NodeId, Telemetry>,
    /// Per-node extraction status, for every node attempted.
    pub status: BTreeMap<NodeId, ExtractionStatus>,
    /// Total RPC attempts across all nodes (retries included).
    pub attempts: u64,
    /// Attempts beyond the first, per node, summed (the retry tally).
    pub retries: u64,
    /// Total virtual time spent in backoff waits across all nodes.
    pub backoff_total: SimDuration,
    /// Total virtual time the sweep consumed (failed-RPC costs + backoff
    /// waits, summed over nodes; a clean sweep is `ZERO`).
    pub sim_elapsed: SimDuration,
    /// Per-node share of `backoff_total` — the audit trail for deadline
    /// exhaustion: a node's waits must sum to exactly this.
    pub backoff_by_node: BTreeMap<NodeId, SimDuration>,
    /// Per-node attempt counts (retries included).
    pub attempts_by_node: BTreeMap<NodeId, u32>,
}

impl CollectionReport {
    /// Fraction of attempted nodes with some extracted state (fresh or
    /// stale). `1.0` for an empty node set.
    pub fn coverage(&self) -> f64 {
        if self.status.is_empty() {
            return 1.0;
        }
        let covered = self.status.values().filter(|s| s.is_covered()).count();
        covered as f64 / self.status.len() as f64
    }

    /// Nodes with no extracted state.
    pub fn missing(&self) -> Vec<&NodeId> {
        self.status
            .iter()
            .filter(|(_, s)| !s.is_covered())
            .map(|(n, _)| n)
            .collect()
    }

    /// Flushes the sweep's tallies into an observability snapshot under
    /// `mgmt.*` names. Everything recorded here is seed-deterministic.
    pub fn observe_into(&self, obs: &mut mfv_obs::Obs) {
        let m = &mut obs.metrics;
        m.inc("mgmt.rpc.attempts", self.attempts);
        m.inc("mgmt.rpc.retries", self.retries);
        m.inc("mgmt.rpc.backoff_ms", self.backoff_total.as_millis());
        m.inc("mgmt.rpc.elapsed_ms", self.sim_elapsed.as_millis());
        let (mut fresh, mut stale, mut missing) = (0u64, 0u64, 0u64);
        for s in self.status.values() {
            match s {
                ExtractionStatus::Fresh => fresh += 1,
                ExtractionStatus::Stale(_) => stale += 1,
                ExtractionStatus::Missing(_) => missing += 1,
            }
        }
        m.inc("mgmt.nodes.fresh", fresh);
        m.inc("mgmt.nodes.stale", stale);
        m.inc("mgmt.nodes.missing", missing);
    }
}

/// Stable per-node key for seeding: FNV-1a over the node name, so failure
/// schedules don't depend on iteration order. Shared with the Subscribe
/// watcher so per-node fault streams stay decorrelated there too.
pub(crate) fn node_key(node: &NodeId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in node.0.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use mfv_vrouter::VendorProfile;
    use std::net::Ipv4Addr;

    fn router(name: &str) -> VirtualRouter {
        let spec = RouterSpec::new(name, AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .network("2.2.2.1/32".parse().unwrap());
        let mut r = VirtualRouter::new(name.into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn noop_model_extracts_everything_fresh() {
        let r1 = router("r1");
        let r2 = router("r2");
        let c = Collector::default();
        let report = c.collect(vec![
            (NodeId::from("r1"), Some(&r1)),
            (NodeId::from("r2"), Some(&r2)),
        ]);
        assert_eq!(report.coverage(), 1.0);
        assert_eq!(report.telemetry.len(), 2);
        assert!(report.status.values().all(|s| s.is_fresh()));
        assert_eq!(report.attempts, 2);
    }

    #[test]
    fn forced_failure_exhausts_budget_and_degrades() {
        let r1 = router("r1");
        let r2 = router("r2");
        let mut failures = RpcFailureModel::default();
        failures.force_fail.insert("r1".into());
        let c = Collector::with_failures(failures);
        let report = c.collect(vec![
            (NodeId::from("r1"), Some(&r1)),
            (NodeId::from("r2"), Some(&r2)),
        ]);
        assert_eq!(report.coverage(), 0.5);
        assert!(!report.telemetry.contains_key(&NodeId::from("r1")));
        assert!(report.telemetry.contains_key(&NodeId::from("r2")));
        match &report.status[&NodeId::from("r1")] {
            ExtractionStatus::Missing(reason) => {
                assert!(reason.contains("attempts"), "{reason}");
            }
            other => panic!("expected Missing, got {other:?}"),
        }
        assert_eq!(report.missing(), vec![&NodeId::from("r1")]);
    }

    #[test]
    fn transient_errors_are_retried_through() {
        let r1 = router("r1");
        // 30% transient errors: with 4 attempts per node the chance of a
        // node failing outright is ~1%, and the seed below is chosen to
        // succeed. The point is that retries absorb transient noise.
        let failures = RpcFailureModel {
            transient_error_pct: 30,
            seed: 7,
            ..Default::default()
        };
        let c = Collector::with_failures(failures);
        let report = c.collect(vec![(NodeId::from("r1"), Some(&r1))]);
        assert_eq!(report.coverage(), 1.0);
    }

    #[test]
    fn stale_nodes_tagged_with_age() {
        let r1 = router("r1");
        let mut failures = RpcFailureModel::default();
        failures
            .stale
            .insert("r1".into(), SimDuration::from_secs(45));
        let c = Collector::with_failures(failures);
        let report = c.collect(vec![(NodeId::from("r1"), Some(&r1))]);
        assert_eq!(
            report.status[&NodeId::from("r1")],
            ExtractionStatus::Stale(SimDuration::from_secs(45))
        );
        assert_eq!(report.coverage(), 1.0); // stale still counts as covered
    }

    #[test]
    fn missing_router_instance_is_missing() {
        let c = Collector::default();
        let report = c.collect(vec![(NodeId::from("ghost"), None)]);
        assert_eq!(report.coverage(), 0.0);
        assert_eq!(
            report.status[&NodeId::from("ghost")],
            ExtractionStatus::Missing("no router instance".into())
        );
    }

    #[test]
    fn collection_is_deterministic_in_seed() {
        let r1 = router("r1");
        let r2 = router("r2");
        let failures = RpcFailureModel {
            timeout_pct: 20,
            transient_error_pct: 20,
            seed: 42,
            ..Default::default()
        };
        let run = || {
            let c = Collector::with_failures(failures.clone());
            let rep = c.collect(vec![
                (NodeId::from("r1"), Some(&r1)),
                (NodeId::from("r2"), Some(&r2)),
            ]);
            (rep.status.clone(), rep.attempts)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn backoff_is_capped() {
        let c = Collector::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Attempt 10 would be base << 9 = 51.2s uncapped; must clamp to
        // max_backoff plus jitter.
        let d = c.backoff_delay(10, &mut rng);
        let cap = c.config.max_backoff.as_millis();
        assert!(d.as_millis() <= cap + cap / 4, "{d}");
        // And grows monotonically in expectation early on: attempt 1 < cap.
        let d1 = c.backoff_delay(1, &mut rng);
        assert!(d1.as_millis() < cap);
    }

    #[test]
    fn deadline_exhaustion_saturates_backoff_with_exact_accounting() {
        let r1 = router("r1");
        let node = NodeId::from("r1");
        let mut failures = RpcFailureModel {
            seed: 11,
            ..Default::default()
        };
        failures.force_fail.insert(node.clone());
        // Retry budget effectively unbounded: the only way out is the
        // per-node deadline, long after backoff has hit its ceiling.
        let config = CollectorConfig {
            max_attempts: 100,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_millis(400),
            per_node_deadline: SimDuration::from_secs(20),
        };
        let c = Collector {
            config: config.clone(),
            failures,
        };
        let report = c.collect(vec![(node.clone(), Some(&r1))]);

        // Exit was the deadline, not the attempt budget.
        match &report.status[&node] {
            ExtractionStatus::Missing(reason) => {
                assert!(reason.contains("per-node deadline"), "{reason}");
            }
            other => panic!("expected Missing, got {other:?}"),
        }
        let attempts = report.attempts_by_node[&node];
        assert!(
            attempts >= 5,
            "expected saturation, got {attempts} attempts"
        );
        assert!(attempts < config.max_attempts);

        // Reconstruct the exact wait sequence the collector drew: one
        // failure roll then one backoff per attempt, same seeded stream.
        let mut rng = ChaCha8Rng::seed_from_u64(c.failures.seed ^ node_key(&node));
        let mut waits = Vec::new();
        for k in 1..=attempts {
            let _roll = rng.gen_range(0..100u32);
            waits.push(config.backoff_delay(k, &mut rng));
        }
        let cap = config.max_backoff.as_millis();
        for (i, w) in waits.iter().enumerate() {
            assert!(w.as_millis() <= cap + cap / 4, "wait {i}: {w}");
        }
        // From the third attempt on the exponential base exceeds the cap,
        // so every subsequent wait sits in the saturated band [max, 1.25*max].
        for w in waits.iter().skip(2) {
            assert!(w.as_millis() >= cap, "unsaturated late wait {w}");
        }

        // Accounting is exact: backoff per node sums the drawn waits, and
        // elapsed is attempts * RPC_TIMEOUT (every forced failure is a
        // timeout) plus all backoff waited.
        let backoff: SimDuration = waits.iter().fold(SimDuration::ZERO, |acc, w| acc + *w);
        assert_eq!(report.backoff_by_node[&node], backoff);
        assert_eq!(report.backoff_total, backoff);
        assert_eq!(
            report.sim_elapsed,
            RPC_TIMEOUT.saturating_mul(attempts as u64) + backoff
        );
        assert!(report.sim_elapsed >= config.per_node_deadline);

        // And the whole exhaustion replays bit-for-bit.
        let replay = c.collect(vec![(node.clone(), Some(&r1))]);
        assert_eq!(replay.status, report.status);
        assert_eq!(replay.attempts_by_node, report.attempts_by_node);
        assert_eq!(replay.backoff_by_node, report.backoff_by_node);
        assert_eq!(replay.sim_elapsed, report.sim_elapsed);
    }

    #[test]
    fn down_is_missing_gate() {
        let mut r1 = router("r1");
        r1.inject_crash("test");
        let _ = r1.poll(SimTime(200));
        assert!(!r1.is_running());

        // Default: a down device still answers (up=false in telemetry).
        let report = Collector::default().collect(vec![(NodeId::from("r1"), Some(&r1))]);
        assert!(report.status[&NodeId::from("r1")].is_covered());

        // Opt-in fate sharing: down device is unreachable over gNMI too.
        let failures = RpcFailureModel {
            down_is_missing: true,
            ..Default::default()
        };
        let report =
            Collector::with_failures(failures).collect(vec![(NodeId::from("r1"), Some(&r1))]);
        assert_eq!(
            report.status[&NodeId::from("r1")],
            ExtractionStatus::Missing("device down".into())
        );
    }
}
