//! A gNMI-flavoured management interface.
//!
//! Models the Get side of gNMI: a device exposes a path-addressed state
//! tree; clients issue [`get`](Telemetry::get) with an OpenConfig-style path
//! and receive the JSON subtree. The AFT dump the verification pipeline
//! depends on is one path among several (`/network-instances/.../afts`), so
//! operator tooling and the verifier share the same access mechanism —
//! precisely the "production interfaces and tooling" benefit of §3.

use serde_json::{json, Value};

use mfv_vrouter::VirtualRouter;

use crate::aft::Aft;

/// A snapshot of one device's management-plane state tree.
#[derive(Clone, Debug)]
pub struct Telemetry {
    root: Value,
}

/// Why a device's state tree could not be captured.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "extraction failed: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

/// Normalises a gNMI-ish path: strips `[name=...]` list keys and empty
/// segments, producing the plain segment list used for traversal.
fn normalize(path: &str) -> Vec<String> {
    path.split('/')
        .filter(|s| !s.is_empty())
        .map(|s| s.split('[').next().unwrap_or(s).to_string())
        .collect()
}

impl Telemetry {
    /// Captures the state tree of a router. Fails (rather than panicking)
    /// if the AFT does not serialise — a malformed dump from one device
    /// must degrade that device's coverage, not abort the whole collection.
    pub fn from_router(router: &VirtualRouter) -> Result<Telemetry, ExtractError> {
        let aft = Aft::from_fib(router.fib());
        let aft_value = serde_json::to_value(&aft).map_err(|e| {
            ExtractError(format!(
                "aft for {} does not serialise: {e}",
                router.config().hostname
            ))
        })?;

        let bgp_neighbors: Vec<Value> = router
            .bgp_engine()
            .map(|b| {
                b.summaries()
                    .into_iter()
                    .map(|s| {
                        json!({
                            "neighbor-address": s.peer.to_string(),
                            "peer-as": s.remote_as.0,
                            "session-state": format!("{:?}", s.state).to_uppercase(),
                            "prefixes-received": s.prefixes_received,
                            "prefixes-sent": s.prefixes_sent,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();

        let isis_adjacencies: Vec<Value> = router
            .isis_engine()
            .map(|i| {
                i.adjacencies()
                    .into_iter()
                    .map(|a| {
                        json!({
                            "interface": a.iface.to_string(),
                            "adjacency-state": format!("{:?}", a.state).to_uppercase(),
                            "system-id": a.neighbor.map(|n| n.to_string()),
                            "neighbor-ipv4-address":
                                a.neighbor_addr.map(|n| n.to_string()),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();

        let interfaces: Vec<Value> = router
            .config()
            .interfaces
            .iter()
            .map(|i| {
                json!({
                    "name": i.name.to_string(),
                    "enabled": !i.shutdown,
                    "ipv4-address": i.addr.map(|a| a.to_string()),
                    // L3-ness as the device resolves it (routed port or
                    // loopback) — lets a Subscribe consumer rebuild the
                    // node's address set from telemetry alone.
                    "routed": i.routed || i.name.is_loopback(),
                })
            })
            .collect();

        let root = json!({
            "system": {
                "state": {
                    "hostname": router.config().hostname,
                    "software-version": router.profile().sw_version,
                    "up": router.is_running(),
                }
            },
            "interfaces": { "interface": interfaces },
            "network-instances": {
                "network-instance": {
                    "afts": aft_value,
                    "protocols": {
                        "bgp": { "neighbors": { "neighbor": bgp_neighbors } },
                        "isis": { "adjacencies": { "adjacency": isis_adjacencies } },
                    }
                }
            }
        });
        Ok(Telemetry { root })
    }

    /// gNMI Get: returns the subtree at `path`, or `None` if absent.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut cur = &self.root;
        for seg in normalize(path) {
            cur = cur.get(&seg)?;
        }
        Some(cur)
    }

    /// Convenience: the device's AFT, decoded.
    pub fn aft(&self) -> Option<Aft> {
        let v = self.get("/network-instances/network-instance[name=default]/afts")?;
        serde_json::from_value(v.clone()).ok()
    }

    /// The whole tree, for debugging / archiving snapshots.
    pub fn root(&self) -> &Value {
        &self.root
    }

    /// Builds a snapshot directly from a state-tree value — the
    /// consumer-side constructor for Subscribe mirrors (and for property
    /// tests over arbitrary trees).
    pub fn from_root(root: Value) -> Telemetry {
        Telemetry { root }
    }

    /// The `/system/state/up` leaf: process liveness as the management
    /// plane reports it. Absent leaf reads as down.
    pub fn is_up(&self) -> bool {
        self.get("/system/state/up")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    }

    /// The device's L3 interface addresses, reconstructed from the
    /// `/interfaces/interface` list (enabled + routed + addressed). Matches
    /// `VirtualRouter::addresses()`, so a consumer can rebuild dataplane
    /// node state from telemetry alone.
    pub fn addresses(&self) -> std::collections::BTreeSet<std::net::Ipv4Addr> {
        let mut out = std::collections::BTreeSet::new();
        let Some(list) = self.get("/interfaces/interface").and_then(Value::as_array) else {
            return out;
        };
        for entry in list {
            let enabled = entry
                .get("enabled")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let routed = entry
                .get("routed")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            if !enabled || !routed {
                continue;
            }
            let Some(addr) = entry.get("ipv4-address").and_then(Value::as_str) else {
                continue;
            };
            // Addresses are streamed in `a.b.c.d/len` form.
            let host = addr.split('/').next().unwrap_or(addr);
            if let Ok(ip) = host.parse::<std::net::Ipv4Addr>() {
                out.insert(ip);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use mfv_vrouter::VendorProfile;
    use std::net::Ipv4Addr;

    fn router() -> VirtualRouter {
        let spec = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .ebgp(Ipv4Addr::new(100, 64, 0, 1), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap());
        let mut r = VirtualRouter::new("r1".into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn get_system_hostname() {
        let t = Telemetry::from_router(&router()).unwrap();
        let v = t.get("/system/state/hostname").unwrap();
        assert_eq!(v, "r1");
    }

    #[test]
    fn get_with_list_keys_normalized() {
        let t = Telemetry::from_router(&router()).unwrap();
        assert!(t
            .get("/network-instances/network-instance[name=default]/afts")
            .is_some());
        assert!(t.get("/nonexistent/path").is_none());
    }

    #[test]
    fn aft_extraction_matches_fib() {
        let r = router();
        let t = Telemetry::from_router(&r).unwrap();
        let aft = t.aft().unwrap();
        assert_eq!(aft.len(), r.fib().len());
        assert!(aft.to_fib().same_as(r.fib()));
    }

    #[test]
    fn bgp_and_isis_state_visible() {
        let t = Telemetry::from_router(&router()).unwrap();
        let neighbors = t
            .get("/network-instances/network-instance/protocols/bgp/neighbors/neighbor")
            .unwrap();
        assert_eq!(neighbors.as_array().unwrap().len(), 1);
        let adjs = t
            .get("/network-instances/network-instance/protocols/isis/adjacencies/adjacency")
            .unwrap();
        assert_eq!(adjs.as_array().unwrap().len(), 1);
    }

    #[test]
    fn interfaces_listed() {
        let t = Telemetry::from_router(&router()).unwrap();
        let ifs = t.get("/interfaces/interface").unwrap().as_array().unwrap();
        assert_eq!(ifs.len(), 2); // Loopback0 + Ethernet1
    }
}

/// One update in a Subscribe stream: a path whose value changed (or was
/// removed) between two telemetry snapshots.
#[derive(Clone, PartialEq, Debug)]
pub struct Update {
    /// Slash-joined path of the changed leaf/subtree.
    pub path: String,
    /// The new value; `None` means the path was deleted.
    pub value: Option<Value>,
}

/// Computes the gNMI-Subscribe-style update stream between two snapshots:
/// the minimal set of subtree replacements turning `old` into `new`.
/// Leaves are compared exactly; arrays are treated as leaves (replaced
/// whole, as ON_CHANGE subscriptions to list containers behave).
///
/// The batch is [`canonicalize`]d: sorted in path order with one update per
/// path, so the stream's byte layout is independent of how either tree was
/// built up.
pub fn diff(old: &Telemetry, new: &Telemetry) -> Vec<Update> {
    let mut out = Vec::new();
    diff_value(&old.root, &new.root, String::new(), &mut out);
    canonicalize(out)
}

/// Canonicalizes an update batch: exactly one update per path, sorted in
/// deterministic path order, with updates made redundant by a replaced (or
/// deleted) ancestor subtree folded into that ancestor instead of riding
/// alongside it.
///
/// Applying the canonical batch via [`apply`] is equivalent to applying
/// the original batch in order, provided the batch's deletions address
/// paths whose parents are containers in the tree being updated. Every
/// diff-produced batch satisfies this (deletes only name keys present in
/// the old tree); the caveat exists because a hand-built
/// set-then-delete pair like `[/a/b = 1, delete /a/b]` materialises `/a`
/// as a side effect, which no single-update-per-path batch can express.
///
/// [`diff`] output is near-canonical by construction (objects are
/// `BTreeMap`-backed and replacements subsume their subtrees); this pins
/// the ordering contract and does real work for hand-built or merged
/// batches.
pub fn canonicalize(updates: Vec<Update>) -> Vec<Update> {
    use std::collections::BTreeMap;
    // Path → pending value (`None` = delete). Invariant: no recorded path
    // is an ancestor of another — ancestors absorb their descendants.
    let mut canon: BTreeMap<String, Option<Value>> = BTreeMap::new();
    for u in updates {
        // Strict ancestors of this path, shallowest first.
        let segs: Vec<&str> = u.path.split('/').filter(|s| !s.is_empty()).collect();
        let mut ancestors = Vec::new();
        let mut prefix = String::new();
        for seg in segs.iter().take(segs.len().saturating_sub(1)) {
            prefix.push('/');
            prefix.push_str(seg);
            ancestors.push(prefix.clone());
        }
        // A recorded ancestor absorbs this update: the batch already
        // replaces (or deletes) the whole subtree, so the child edit lands
        // inside that pending value rather than as a separate entry.
        let mut folded = false;
        for anc in &ancestors {
            let Some(entry) = canon.get_mut(anc) else {
                continue;
            };
            let rel = u.path.strip_prefix(anc.as_str()).unwrap_or("");
            match entry {
                Some(base) => apply_one(base, rel, &u.value),
                // The whole subtree is pending deletion. A child deletion
                // inside it stays a no-op; a child update revives the
                // subtree as a fresh container holding just that child —
                // the same net tree as applying the two updates in order.
                None => {
                    if u.value.is_some() {
                        let mut base = Value::Object(std::collections::BTreeMap::new());
                        apply_one(&mut base, rel, &u.value);
                        *entry = Some(base);
                    }
                }
            }
            folded = true;
            break;
        }
        if folded {
            continue;
        }
        // This update supersedes anything previously recorded beneath it.
        let subtree = format!("{}/", u.path);
        let stale: Vec<String> = canon
            .range(subtree.clone()..)
            .map(|(k, _)| k.clone())
            .take_while(|k| k.starts_with(&subtree))
            .collect();
        for k in stale {
            canon.remove(&k);
        }
        canon.insert(u.path, u.value);
    }
    canon
        .into_iter()
        .map(|(path, value)| Update { path, value })
        .collect()
}

/// Applies a Subscribe update batch to a snapshot, producing the updated
/// tree — the consumer-side inverse of [`diff`]: `apply(old, &diff(old,
/// new))` reproduces `new` byte for byte. This is what lets a watcher keep
/// a mirror of each device's state tree without re-pulling full snapshots.
pub fn apply(base: &Telemetry, updates: &[Update]) -> Telemetry {
    let mut root = base.root.clone();
    for u in updates {
        apply_one(&mut root, &u.path, &u.value);
    }
    Telemetry { root }
}

/// Applies one update in place. Replacements create missing intermediate
/// containers (gNMI update semantics: setting a path under a leaf turns
/// the leaf into a container); deletions of absent paths are no-ops and
/// never materialise their parents.
fn apply_one(root: &mut Value, path: &str, value: &Option<Value>) {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let Some((last, parents)) = segs.split_last() else {
        // The empty path addresses the whole tree.
        *root = match value {
            Some(v) => v.clone(),
            None => Value::Object(std::collections::BTreeMap::new()),
        };
        return;
    };
    let mut cur = root;
    for seg in parents {
        if value.is_some() && !matches!(cur, Value::Object(_)) {
            *cur = Value::Object(std::collections::BTreeMap::new());
        }
        let Value::Object(m) = cur else {
            return;
        };
        cur = match value {
            Some(_) => m
                .entry((*seg).to_string())
                .or_insert_with(|| Value::Object(std::collections::BTreeMap::new())),
            None => match m.get_mut(*seg) {
                Some(next) => next,
                None => return,
            },
        };
    }
    if value.is_some() && !matches!(cur, Value::Object(_)) {
        *cur = Value::Object(std::collections::BTreeMap::new());
    }
    let Value::Object(m) = cur else {
        return;
    };
    match value {
        Some(v) => {
            m.insert((*last).to_string(), v.clone());
        }
        None => {
            m.remove(*last);
        }
    }
}

fn diff_value(old: &Value, new: &Value, path: String, out: &mut Vec<Update>) {
    match (old, new) {
        (Value::Object(a), Value::Object(b)) => {
            for (k, va) in a {
                let child_path = format!("{path}/{k}");
                match b.get(k) {
                    Some(vb) => diff_value(va, vb, child_path, out),
                    None => out.push(Update {
                        path: child_path,
                        value: None,
                    }),
                }
            }
            for (k, vb) in b {
                if !a.contains_key(k) {
                    out.push(Update {
                        path: format!("{path}/{k}"),
                        value: Some(vb.clone()),
                    });
                }
            }
        }
        (a, b) if a == b => {}
        (_, b) => out.push(Update {
            path,
            value: Some(b.clone()),
        }),
    }
}

#[cfg(test)]
mod subscribe_tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use mfv_vrouter::VendorProfile;
    use std::net::Ipv4Addr;

    fn router() -> mfv_vrouter::VirtualRouter {
        let spec = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .network("2.2.2.1/32".parse().unwrap());
        let mut r =
            mfv_vrouter::VirtualRouter::new("r1".into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn identical_snapshots_produce_no_updates() {
        let r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        let t2 = Telemetry::from_router(&r).unwrap();
        assert!(diff(&t1, &t2).is_empty());
    }

    #[test]
    fn link_down_shows_up_as_aft_update() {
        let mut r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        r.set_link(&"Ethernet1".into(), false);
        let _ = r.poll(SimTime(200));
        let t2 = Telemetry::from_router(&r).unwrap();
        let updates = diff(&t1, &t2);
        assert!(!updates.is_empty());
        assert!(
            updates.iter().any(|u| u.path.contains("/afts")),
            "{updates:#?}"
        );
    }

    #[test]
    fn apply_inverts_diff_on_router_snapshots() {
        let mut r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        r.set_link(&"Ethernet1".into(), false);
        let _ = r.poll(SimTime(200));
        let t2 = Telemetry::from_router(&r).unwrap();
        let updates = diff(&t1, &t2);
        assert!(!updates.is_empty());
        let rebuilt = apply(&t1, &updates);
        assert_eq!(rebuilt.root(), t2.root());
        // Byte-identical, not just structurally equal.
        assert_eq!(
            serde_json::to_string(rebuilt.root()).unwrap(),
            serde_json::to_string(t2.root()).unwrap()
        );
    }

    #[test]
    fn diff_output_is_path_sorted_and_unique() {
        let old = Telemetry::from_root(json!({"b": {"y": 1, "x": 2}, "a": 1, "c": 3}));
        let new = Telemetry::from_root(json!({"b": {"y": 9, "z": 7}, "c": 3, "d": 4}));
        let updates = diff(&old, &new);
        let paths: Vec<&str> = updates.iter().map(|u| u.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted, "diff must emit sorted, unique paths");
        assert_eq!(
            paths,
            vec!["/a", "/b/x", "/b/y", "/b/z", "/d"],
            "{updates:#?}"
        );
    }

    #[test]
    fn canonicalize_folds_children_under_replaced_subtree() {
        // Replace /a wholesale, then touch /a/b: one canonical update with
        // the child folded in.
        let updates = vec![
            Update {
                path: "/a".into(),
                value: Some(json!({"b": 1, "c": 2})),
            },
            Update {
                path: "/a/b".into(),
                value: Some(json!(9)),
            },
        ];
        let canon = canonicalize(updates.clone());
        assert_eq!(canon.len(), 1);
        assert_eq!(canon[0].path, "/a");
        assert_eq!(canon[0].value, Some(json!({"b": 9, "c": 2})));
        // Equivalent under apply.
        let base = Telemetry::from_root(json!({"a": {"z": 0}}));
        assert_eq!(apply(&base, &updates).root(), apply(&base, &canon).root());
    }

    #[test]
    fn canonicalize_drops_descendants_superseded_by_later_ancestor() {
        // Touch /a/b, then replace /a wholesale: the child edit is stale.
        let updates = vec![
            Update {
                path: "/a/b".into(),
                value: Some(json!(1)),
            },
            Update {
                path: "/a".into(),
                value: Some(json!({"c": 2})),
            },
        ];
        let canon = canonicalize(updates);
        assert_eq!(canon.len(), 1);
        assert_eq!(canon[0].path, "/a");
        assert_eq!(canon[0].value, Some(json!({"c": 2})));
    }

    #[test]
    fn canonicalize_handles_delete_then_child_update() {
        let updates = vec![
            Update {
                path: "/a".into(),
                value: None,
            },
            Update {
                path: "/a/b".into(),
                value: Some(json!(5)),
            },
        ];
        let canon = canonicalize(updates.clone());
        assert_eq!(canon.len(), 1);
        assert_eq!(canon[0].value, Some(json!({"b": 5})));
        let base = Telemetry::from_root(json!({"a": {"b": 1, "c": 2}}));
        assert_eq!(apply(&base, &updates).root(), apply(&base, &canon).root());
    }

    #[test]
    fn apply_deletion_does_not_materialise_parents() {
        let base = Telemetry::from_root(json!({"x": 1}));
        let out = apply(
            &base,
            &[Update {
                path: "/a/b/c".into(),
                value: None,
            }],
        );
        assert_eq!(out.root(), base.root());
    }

    #[test]
    fn telemetry_consumer_helpers_match_router_state() {
        let r = router();
        let t = Telemetry::from_router(&r).unwrap();
        assert!(t.is_up());
        assert_eq!(t.addresses(), r.addresses());
    }

    #[test]
    fn crash_flips_the_up_leaf() {
        let mut r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        // Simulate the process dying via restart + empty poll comparison:
        // apply a config removing the interface instead (visible change).
        let mut cfg = r.config().clone();
        cfg.interfaces.retain(|i| i.name.is_loopback());
        r.apply_config(cfg);
        let _ = r.poll(SimTime(300));
        let t2 = Telemetry::from_router(&r).unwrap();
        let updates = diff(&t1, &t2);
        assert!(
            updates.iter().any(|u| u.path.contains("/interfaces")),
            "{updates:#?}"
        );
    }
}
