//! A gNMI-flavoured management interface.
//!
//! Models the Get side of gNMI: a device exposes a path-addressed state
//! tree; clients issue [`get`](Telemetry::get) with an OpenConfig-style path
//! and receive the JSON subtree. The AFT dump the verification pipeline
//! depends on is one path among several (`/network-instances/.../afts`), so
//! operator tooling and the verifier share the same access mechanism —
//! precisely the "production interfaces and tooling" benefit of §3.

use serde_json::{json, Value};

use mfv_vrouter::VirtualRouter;

use crate::aft::Aft;

/// A snapshot of one device's management-plane state tree.
#[derive(Clone, Debug)]
pub struct Telemetry {
    root: Value,
}

/// Why a device's state tree could not be captured.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "extraction failed: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

/// Normalises a gNMI-ish path: strips `[name=...]` list keys and empty
/// segments, producing the plain segment list used for traversal.
fn normalize(path: &str) -> Vec<String> {
    path.split('/')
        .filter(|s| !s.is_empty())
        .map(|s| s.split('[').next().unwrap_or(s).to_string())
        .collect()
}

impl Telemetry {
    /// Captures the state tree of a router. Fails (rather than panicking)
    /// if the AFT does not serialise — a malformed dump from one device
    /// must degrade that device's coverage, not abort the whole collection.
    pub fn from_router(router: &VirtualRouter) -> Result<Telemetry, ExtractError> {
        let aft = Aft::from_fib(router.fib());
        let aft_value = serde_json::to_value(&aft).map_err(|e| {
            ExtractError(format!(
                "aft for {} does not serialise: {e}",
                router.config().hostname
            ))
        })?;

        let bgp_neighbors: Vec<Value> = router
            .bgp_engine()
            .map(|b| {
                b.summaries()
                    .into_iter()
                    .map(|s| {
                        json!({
                            "neighbor-address": s.peer.to_string(),
                            "peer-as": s.remote_as.0,
                            "session-state": format!("{:?}", s.state).to_uppercase(),
                            "prefixes-received": s.prefixes_received,
                            "prefixes-sent": s.prefixes_sent,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();

        let isis_adjacencies: Vec<Value> = router
            .isis_engine()
            .map(|i| {
                i.adjacencies()
                    .into_iter()
                    .map(|a| {
                        json!({
                            "interface": a.iface.to_string(),
                            "adjacency-state": format!("{:?}", a.state).to_uppercase(),
                            "system-id": a.neighbor.map(|n| n.to_string()),
                            "neighbor-ipv4-address":
                                a.neighbor_addr.map(|n| n.to_string()),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();

        let interfaces: Vec<Value> = router
            .config()
            .interfaces
            .iter()
            .map(|i| {
                json!({
                    "name": i.name.to_string(),
                    "enabled": !i.shutdown,
                    "ipv4-address": i.addr.map(|a| a.to_string()),
                })
            })
            .collect();

        let root = json!({
            "system": {
                "state": {
                    "hostname": router.config().hostname,
                    "software-version": router.profile().sw_version,
                    "up": router.is_running(),
                }
            },
            "interfaces": { "interface": interfaces },
            "network-instances": {
                "network-instance": {
                    "afts": aft_value,
                    "protocols": {
                        "bgp": { "neighbors": { "neighbor": bgp_neighbors } },
                        "isis": { "adjacencies": { "adjacency": isis_adjacencies } },
                    }
                }
            }
        });
        Ok(Telemetry { root })
    }

    /// gNMI Get: returns the subtree at `path`, or `None` if absent.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut cur = &self.root;
        for seg in normalize(path) {
            cur = cur.get(&seg)?;
        }
        Some(cur)
    }

    /// Convenience: the device's AFT, decoded.
    pub fn aft(&self) -> Option<Aft> {
        let v = self.get("/network-instances/network-instance[name=default]/afts")?;
        serde_json::from_value(v.clone()).ok()
    }

    /// The whole tree, for debugging / archiving snapshots.
    pub fn root(&self) -> &Value {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use mfv_vrouter::VendorProfile;
    use std::net::Ipv4Addr;

    fn router() -> VirtualRouter {
        let spec = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .ebgp(Ipv4Addr::new(100, 64, 0, 1), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap());
        let mut r = VirtualRouter::new("r1".into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn get_system_hostname() {
        let t = Telemetry::from_router(&router()).unwrap();
        let v = t.get("/system/state/hostname").unwrap();
        assert_eq!(v, "r1");
    }

    #[test]
    fn get_with_list_keys_normalized() {
        let t = Telemetry::from_router(&router()).unwrap();
        assert!(t
            .get("/network-instances/network-instance[name=default]/afts")
            .is_some());
        assert!(t.get("/nonexistent/path").is_none());
    }

    #[test]
    fn aft_extraction_matches_fib() {
        let r = router();
        let t = Telemetry::from_router(&r).unwrap();
        let aft = t.aft().unwrap();
        assert_eq!(aft.len(), r.fib().len());
        assert!(aft.to_fib().same_as(r.fib()));
    }

    #[test]
    fn bgp_and_isis_state_visible() {
        let t = Telemetry::from_router(&router()).unwrap();
        let neighbors = t
            .get("/network-instances/network-instance/protocols/bgp/neighbors/neighbor")
            .unwrap();
        assert_eq!(neighbors.as_array().unwrap().len(), 1);
        let adjs = t
            .get("/network-instances/network-instance/protocols/isis/adjacencies/adjacency")
            .unwrap();
        assert_eq!(adjs.as_array().unwrap().len(), 1);
    }

    #[test]
    fn interfaces_listed() {
        let t = Telemetry::from_router(&router()).unwrap();
        let ifs = t.get("/interfaces/interface").unwrap().as_array().unwrap();
        assert_eq!(ifs.len(), 2); // Loopback0 + Ethernet1
    }
}

/// One update in a Subscribe stream: a path whose value changed (or was
/// removed) between two telemetry snapshots.
#[derive(Clone, PartialEq, Debug)]
pub struct Update {
    /// Slash-joined path of the changed leaf/subtree.
    pub path: String,
    /// The new value; `None` means the path was deleted.
    pub value: Option<Value>,
}

/// Computes the gNMI-Subscribe-style update stream between two snapshots:
/// the minimal set of subtree replacements turning `old` into `new`.
/// Leaves are compared exactly; arrays are treated as leaves (replaced
/// whole, as ON_CHANGE subscriptions to list containers behave).
pub fn diff(old: &Telemetry, new: &Telemetry) -> Vec<Update> {
    let mut out = Vec::new();
    diff_value(&old.root, &new.root, String::new(), &mut out);
    out
}

fn diff_value(old: &Value, new: &Value, path: String, out: &mut Vec<Update>) {
    match (old, new) {
        (Value::Object(a), Value::Object(b)) => {
            for (k, va) in a {
                let child_path = format!("{path}/{k}");
                match b.get(k) {
                    Some(vb) => diff_value(va, vb, child_path, out),
                    None => out.push(Update {
                        path: child_path,
                        value: None,
                    }),
                }
            }
            for (k, vb) in b {
                if !a.contains_key(k) {
                    out.push(Update {
                        path: format!("{path}/{k}"),
                        value: Some(vb.clone()),
                    });
                }
            }
        }
        (a, b) if a == b => {}
        (_, b) => out.push(Update {
            path,
            value: Some(b.clone()),
        }),
    }
}

#[cfg(test)]
mod subscribe_tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use mfv_vrouter::VendorProfile;
    use std::net::Ipv4Addr;

    fn router() -> mfv_vrouter::VirtualRouter {
        let spec = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .network("2.2.2.1/32".parse().unwrap());
        let mut r =
            mfv_vrouter::VirtualRouter::new("r1".into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    #[test]
    fn identical_snapshots_produce_no_updates() {
        let r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        let t2 = Telemetry::from_router(&r).unwrap();
        assert!(diff(&t1, &t2).is_empty());
    }

    #[test]
    fn link_down_shows_up_as_aft_update() {
        let mut r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        r.set_link(&"Ethernet1".into(), false);
        let _ = r.poll(SimTime(200));
        let t2 = Telemetry::from_router(&r).unwrap();
        let updates = diff(&t1, &t2);
        assert!(!updates.is_empty());
        assert!(
            updates.iter().any(|u| u.path.contains("/afts")),
            "{updates:#?}"
        );
    }

    #[test]
    fn crash_flips_the_up_leaf() {
        let mut r = router();
        let t1 = Telemetry::from_router(&r).unwrap();
        // Simulate the process dying via restart + empty poll comparison:
        // apply a config removing the interface instead (visible change).
        let mut cfg = r.config().clone();
        cfg.interfaces.retain(|i| i.name.is_loopback());
        r.apply_config(cfg);
        let _ = r.poll(SimTime(300));
        let t2 = Telemetry::from_router(&r).unwrap();
        let updates = diff(&t1, &t2);
        assert!(
            updates.iter().any(|u| u.path.contains("/interfaces")),
            "{updates:#?}"
        );
    }
}
