//! Management plane: the vendor-agnostic extraction layer between emulation
//! and verification.
//!
//! - [`aft`] — OpenConfig-style Abstract Forwarding Tables (what the
//!   pipeline dumps after convergence and feeds to the verifier)
//! - [`gnmi`] — a gNMI-flavoured Get interface over a device state tree
//! - [`collect`] — a retrying collector over a simulated lossy RPC path,
//!   degrading gracefully to partial coverage instead of aborting
//! - [`watch`] — a fault-tolerant gNMI Subscribe watcher: per-node update
//!   streams with gap detection, backoff resubscription, and snapshot
//!   resync, for continuous verification

pub mod aft;
pub mod collect;
pub mod gnmi;
pub mod watch;

pub use aft::{Aft, AftIpv4Entry, AftNextHop, AftNextHopGroup};
pub use collect::{CollectionReport, Collector, CollectorConfig, RpcFailureModel};
pub use gnmi::{apply, canonicalize, diff, ExtractError, Telemetry, Update};
pub use watch::{StreamFaultModel, TickReport, WatchConfig, WatchEvent, WatchStats, Watcher};

use mfv_dataplane::Dataplane;
use mfv_types::NodeId;
use std::collections::BTreeMap;

/// Extracts a full-network AFT collection from per-node telemetry — the
/// "dump AFTs via gNMI" step of §4.1, applied across the topology.
pub fn collect_afts(telemetry: &BTreeMap<NodeId, Telemetry>) -> BTreeMap<NodeId, Aft> {
    telemetry
        .iter()
        .filter_map(|(n, t)| t.aft().map(|a| (n.clone(), a)))
        .collect()
}

/// Rebuilds a [`Dataplane`] from extracted AFTs plus the link/address
/// context the verifier needs. This is the ingestion path that replaces the
/// model-computed dataplane (the paper's 3,300-line Batfish change).
///
/// Only nodes present in `afts` appear; links with an absent endpoint are
/// dropped with them, so a partially-covered extraction still yields a
/// self-consistent dataplane.
pub fn dataplane_from_afts(afts: &BTreeMap<NodeId, Aft>, reference: &Dataplane) -> Dataplane {
    let mut dp = Dataplane::new();
    for (node, aft) in afts {
        let (addresses, up) = reference
            .nodes
            .get(node)
            .map(|n| (n.addresses.clone(), n.up))
            .unwrap_or_default();
        dp.add_node(node.clone(), &aft.to_fib(), addresses, up);
    }
    for link in &reference.links {
        if dp.nodes.contains_key(&link.a.0) && dp.nodes.contains_key(&link.b.0) {
            dp.add_link(link.clone());
        }
    }
    dp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aft_ingestion_reproduces_dataplane() {
        use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
        use mfv_types::RouteProtocol;

        let mut fib = Fib::new();
        fib.insert(FibEntry {
            prefix: "10.0.0.0/24".parse().unwrap(),
            proto: RouteProtocol::Connected,
            next_hops: vec![FibNextHop {
                iface: "eth0".into(),
                via: None,
            }],
        });
        let mut reference = Dataplane::new();
        reference.add_node("r1".into(), &fib, Default::default(), true);

        let mut afts = BTreeMap::new();
        afts.insert(NodeId::from("r1"), Aft::from_fib(&fib));

        let rebuilt = dataplane_from_afts(&afts, &reference);
        assert_eq!(rebuilt.digest(), reference.digest());
    }
}
