//! Continuous telemetry: a fault-tolerant gNMI Subscribe watcher.
//!
//! One-shot extraction ([`crate::collect`]) answers "what is the network
//! doing *now*"; continuous verification needs "tell me whenever it
//! changes". This module models a per-node Subscribe session: the device
//! side diffs its state tree against what it already streamed
//! ([`crate::gnmi::diff`]) and emits sequence-numbered, sim-time-stamped
//! update batches; the client side maintains a mirror by applying them
//! ([`crate::gnmi::apply`]).
//!
//! The stream is allowed to fail, and every failure mode is detected
//! rather than silently corrupting the mirror:
//!
//! - **Gaps** — a delivered batch skips ahead of the expected sequence
//!   number (an earlier batch was lost). The mirror is frozen and a
//!   full-snapshot resync is scheduled *for that node only*.
//! - **Duplicates / stale batches** — sequence number below the expected
//!   one; discarded and counted.
//! - **Session loss** — the stream resets outright, or goes silent past
//!   [`WatchConfig::silence_timeout`] (heartbeat batches bound how long
//!   silence can be mistaken for quiet). Resubscribe attempts use the
//!   collector's capped seeded backoff ([`CollectorConfig::backoff_delay`]).
//!
//! While a stream is degraded its node's [`ExtractionStatus`] drops to
//! `Stale` (and to `Missing` past [`WatchConfig::max_stale`]), so standing
//! verdicts computed from the mirrors become coverage-qualified instead of
//! quietly wrong. Sequence numbers are global per node and never reset —
//! a resync simply jumps the mirror to the device's current head.
//!
//! Every random draw (delivery faults, backoff jitter) is a stateless
//! seeded roll in `(seed, node, seq | attempt)`, so a chaos run replays
//! bit-for-bit.

use std::collections::{BTreeMap, VecDeque};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mfv_dataplane::Dataplane;
use mfv_types::{ExtractionStatus, NodeId, SimDuration, SimTime};
use mfv_vrouter::VirtualRouter;

use crate::collect::{node_key, CollectorConfig};
use crate::gnmi::{apply, diff, Telemetry, Update};

/// Simulated failure model for the Subscribe delivery path.
///
/// Defaults to off: every batch is delivered and sessions never reset.
#[derive(Clone, Debug, Default)]
pub struct StreamFaultModel {
    /// Percent of batches lost in flight (the client sees a sequence gap
    /// on the next delivery).
    pub drop_pct: u8,
    /// Percent of deliveries at which the whole session resets (the client
    /// sees an explicit stream error and must resubscribe).
    pub session_loss_pct: u8,
}

impl StreamFaultModel {
    pub fn is_noop(&self) -> bool {
        self.drop_pct == 0 && self.session_loss_pct == 0
    }
}

/// Tuning for the watcher.
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Seed for delivery-fault rolls and backoff jitter.
    pub seed: u64,
    /// Device-side heartbeat cadence: an empty batch is emitted if nothing
    /// changed for this long, so the client can bound gap detection.
    pub heartbeat_every: SimDuration,
    /// In-flight time of a batch between device and client.
    pub delivery_delay: SimDuration,
    /// Client-side silence bound: a healthy stream that delivers nothing
    /// for this long is declared lost.
    pub silence_timeout: SimDuration,
    /// A degraded stream older than this stops counting as covered: its
    /// node's status drops from `Stale` to `Missing`.
    pub max_stale: SimDuration,
    /// Delivery-path failure model.
    pub faults: StreamFaultModel,
    /// Resync retry policy — reuses the collector's capped exponential
    /// backoff so the two degradation paths share one delay schedule.
    pub backoff: CollectorConfig,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            seed: 1,
            heartbeat_every: SimDuration::from_secs(5),
            delivery_delay: SimDuration::from_millis(100),
            silence_timeout: SimDuration::from_secs(12),
            max_stale: SimDuration::from_secs(60),
            faults: StreamFaultModel::default(),
            backoff: CollectorConfig::default(),
        }
    }
}

/// Something the watcher noticed during a tick.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WatchEvent {
    /// Initial subscribe + snapshot completed.
    Synced { node: NodeId },
    /// A content batch was applied to the mirror.
    Delta {
        node: NodeId,
        seq: u64,
        updates: usize,
    },
    /// A delivered batch skipped ahead: at least one batch was lost.
    Gap {
        node: NodeId,
        expected: u64,
        got: u64,
    },
    /// A delivered batch was behind the mirror; discarded.
    Duplicate { node: NodeId, seq: u64 },
    /// The stream reset or went silent past the timeout.
    SessionLost { node: NodeId, reason: String },
    /// A degraded stream recovered via full-snapshot resync.
    Resynced { node: NodeId, attempts: u32 },
}

impl std::fmt::Display for WatchEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchEvent::Synced { node } => write!(f, "{node}: initial sync"),
            WatchEvent::Delta { node, seq, updates } => {
                write!(f, "{node}: delta seq={seq} updates={updates}")
            }
            WatchEvent::Gap {
                node,
                expected,
                got,
            } => write!(f, "{node}: gap expected={expected} got={got}"),
            WatchEvent::Duplicate { node, seq } => {
                write!(f, "{node}: duplicate seq={seq}")
            }
            WatchEvent::SessionLost { node, reason } => {
                write!(f, "{node}: session lost ({reason})")
            }
            WatchEvent::Resynced { node, attempts } => {
                write!(f, "{node}: resynced after {attempts} attempt(s)")
            }
        }
    }
}

/// Deterministic tallies across the watcher's lifetime.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WatchStats {
    /// Content batches emitted by device sides.
    pub batches_emitted: u64,
    /// Heartbeat (empty) batches emitted.
    pub heartbeats_emitted: u64,
    /// Batches that reached the client (content or heartbeat).
    pub batches_delivered: u64,
    /// Batches lost in flight (random or injected).
    pub batches_dropped: u64,
    /// Batches delivered while the stream was already degraded; discarded.
    pub discarded: u64,
    /// Deliveries behind the mirror's sequence; discarded.
    pub duplicates: u64,
    /// Sequence gaps detected.
    pub gaps: u64,
    /// Session resets (explicit or by silence).
    pub session_losses: u64,
    /// Initial snapshot syncs.
    pub initial_syncs: u64,
    /// Recovery resyncs (gap or session loss).
    pub resyncs: u64,
    /// Resync attempts, including failed ones.
    pub resync_attempts: u64,
    /// Device-side state reads that failed (router evicted or encode
    /// error); the stream goes silent instead of emitting.
    pub read_errors: u64,
}

/// What changed at the client during one [`Watcher::tick`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TickReport {
    /// Nodes whose mirror changed, with the sim time the change was
    /// *stamped* at the device (for a resync: when the stream degraded).
    /// `now - stamp` is the end-to-end staleness the standing queries are
    /// about to close — the verdict-latency numerator.
    pub changed: BTreeMap<NodeId, SimTime>,
    /// Everything that happened, in deterministic (node, order) sequence.
    pub events: Vec<WatchEvent>,
}

/// An in-flight Subscribe batch.
#[derive(Clone, Debug)]
struct Batch {
    seq: u64,
    /// Device-side emit time.
    stamped: SimTime,
    deliver_at: SimTime,
    /// Empty for heartbeats.
    updates: Vec<Update>,
}

#[derive(Clone, Debug)]
enum StreamState {
    Healthy,
    /// Mirror frozen; a full-snapshot resync is pending.
    Resyncing {
        /// When the stream degraded (sync stamp for recovery latency).
        since: SimTime,
        /// Failed attempts so far (drives the backoff schedule).
        attempts: u32,
        next_try: SimTime,
        /// First-ever sync rather than a recovery.
        initial: bool,
    },
}

#[derive(Debug)]
struct NodeStream {
    /// Device side: what the device believes it has already streamed.
    /// Advances on every emit — even if delivery later drops the batch,
    /// the device does not know; only a resync recovers the content.
    device_last: Option<Telemetry>,
    /// Device side: next sequence number. Global per node, never resets.
    next_seq: u64,
    /// Device side: last emit (content or heartbeat), for the heartbeat
    /// cadence.
    last_emit: SimTime,
    /// Device side: is the client subscribed (false after session loss)?
    subscribed: bool,
    inflight: VecDeque<Batch>,
    /// Client side: the reconstructed state tree.
    mirror: Option<Telemetry>,
    /// Client side: next expected sequence number.
    mirror_seq: u64,
    /// Client side: last delivery of any kind (silence detection).
    last_heard: SimTime,
    /// Client side: last mirror content change (staleness age).
    last_applied: SimTime,
    state: StreamState,
    /// Test/ops hook: drop the next N deliveries regardless of the fault
    /// model.
    force_drop: u32,
}

impl NodeStream {
    fn new() -> NodeStream {
        NodeStream {
            device_last: None,
            next_seq: 0,
            last_emit: SimTime::ZERO,
            subscribed: false,
            inflight: VecDeque::new(),
            mirror: None,
            mirror_seq: 0,
            last_heard: SimTime::ZERO,
            last_applied: SimTime::ZERO,
            state: StreamState::Resyncing {
                since: SimTime::ZERO,
                attempts: 0,
                next_try: SimTime::ZERO,
                initial: true,
            },
            force_drop: 0,
        }
    }
}

/// The continuous watcher: one Subscribe session per node, a client-side
/// mirror per session, and the fault machinery tying them together.
///
/// Drive it from a tick loop: advance the emulation to `now`, then call
/// [`Watcher::tick`] with each node's live router (or `None` while
/// evicted). All per-node processing happens in name order, so two
/// same-seed runs produce identical stats, events, and mirrors.
pub struct Watcher {
    cfg: WatchConfig,
    streams: BTreeMap<NodeId, NodeStream>,
    stats: WatchStats,
    journal: mfv_obs::Journal,
}

impl Watcher {
    pub fn new(cfg: WatchConfig, nodes: impl IntoIterator<Item = NodeId>) -> Watcher {
        let streams = nodes.into_iter().map(|n| (n, NodeStream::new())).collect();
        Watcher {
            cfg,
            streams,
            stats: WatchStats::default(),
            journal: mfv_obs::Journal::new(),
        }
    }

    pub fn stats(&self) -> &WatchStats {
        &self.stats
    }

    /// The client-side mirror for `node`, if it has ever synced.
    pub fn mirror(&self, node: &NodeId) -> Option<&Telemetry> {
        self.streams.get(node).and_then(|s| s.mirror.as_ref())
    }

    /// Drop the next `count` deliveries for `node` (whatever the fault
    /// model says) — the deterministic way to provoke a sequence gap.
    pub fn inject_drop(&mut self, node: &NodeId, count: u32) {
        if let Some(s) = self.streams.get_mut(node) {
            s.force_drop += count;
        }
    }

    /// One tick: deliver due batches, detect silence, run due resyncs,
    /// then let each device side emit. `nodes` supplies the live router
    /// for each node (`None` while evicted/unbooted).
    pub fn tick<'a, I>(&mut self, now: SimTime, nodes: I) -> TickReport
    where
        I: IntoIterator<Item = (NodeId, Option<&'a VirtualRouter>)>,
    {
        let mut report = TickReport::default();
        for (node, router) in nodes {
            self.tick_node(now, node, router, &mut report);
        }
        report
    }

    fn tick_node(
        &mut self,
        now: SimTime,
        node: NodeId,
        router: Option<&VirtualRouter>,
        report: &mut TickReport,
    ) {
        // Take the stream out while we work on it: sidesteps split-borrow
        // pain and keeps every helper a plain &mut self method.
        let mut s = self.streams.remove(&node).unwrap_or_else(NodeStream::new);
        self.deliver_due(now, &node, &mut s, report);
        self.check_silence(now, &node, &mut s, report);
        self.try_resync(now, &node, router, &mut s, report);
        self.emit_device(now, router, &mut s);
        self.streams.insert(node, s);
    }

    /// Stateless per-batch fault roll: `(dropped, session_lost)`.
    fn delivery_roll(&self, node: &NodeId, seq: u64) -> (bool, bool) {
        if self.cfg.faults.is_noop() {
            return (false, false);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.cfg.seed ^ node_key(node) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        use rand::Rng;
        let dropped = rng.gen_range(0..100u32) < self.cfg.faults.drop_pct as u32;
        let lost = rng.gen_range(0..100u32) < self.cfg.faults.session_loss_pct as u32;
        (dropped, lost)
    }

    /// Seeded backoff delay for resync attempt `attempt` (1-based) —
    /// stateless in `(seed, node, attempt)`.
    fn resync_delay(&self, node: &NodeId, attempt: u32) -> SimDuration {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.cfg.seed ^ node_key(node).rotate_left(17) ^ attempt as u64,
        );
        self.cfg.backoff.backoff_delay(attempt, &mut rng)
    }

    fn degrade(
        &mut self,
        now: SimTime,
        node: &NodeId,
        s: &mut NodeStream,
        reason: &str,
        lost_session: bool,
        report: &mut TickReport,
    ) {
        if lost_session {
            s.subscribed = false;
            s.inflight.clear();
            self.stats.session_losses += 1;
            self.journal
                .push(now, "watch.session_lost", format!("{node}: {reason}"));
            report.events.push(WatchEvent::SessionLost {
                node: node.clone(),
                reason: reason.to_string(),
            });
        }
        // A stream already degraded keeps its original `since` (and its
        // backoff progression): a session loss during a gap-resync is one
        // outage, not two.
        if let StreamState::Resyncing { .. } = s.state {
            return;
        }
        s.state = StreamState::Resyncing {
            since: now,
            attempts: 0,
            next_try: now + self.resync_delay(node, 1),
            initial: false,
        };
    }

    fn deliver_due(
        &mut self,
        now: SimTime,
        node: &NodeId,
        s: &mut NodeStream,
        report: &mut TickReport,
    ) {
        loop {
            let due = s.inflight.front().is_some_and(|b| b.deliver_at <= now);
            if !due {
                return;
            }
            let Some(b) = s.inflight.pop_front() else {
                return;
            };
            let mut dropped = s.force_drop > 0;
            let mut lost = false;
            if dropped {
                s.force_drop -= 1;
            } else {
                (dropped, lost) = self.delivery_roll(node, b.seq);
            }
            if lost {
                // The stream itself reset: the batch dies with it.
                self.stats.batches_dropped += 1;
                self.degrade(now, node, s, "stream reset", true, report);
                return;
            }
            if dropped {
                self.stats.batches_dropped += 1;
                continue;
            }
            self.stats.batches_delivered += 1;
            if let StreamState::Resyncing { .. } = s.state {
                // Mirror is frozen pending resync; incremental batches
                // can no longer be applied safely.
                self.stats.discarded += 1;
                continue;
            }
            if b.seq < s.mirror_seq {
                self.stats.duplicates += 1;
                report.events.push(WatchEvent::Duplicate {
                    node: node.clone(),
                    seq: b.seq,
                });
                continue;
            }
            if b.seq > s.mirror_seq {
                self.stats.gaps += 1;
                self.journal.push(
                    now,
                    "watch.gap",
                    format!("{node}: expected seq {} got {}", s.mirror_seq, b.seq),
                );
                report.events.push(WatchEvent::Gap {
                    node: node.clone(),
                    expected: s.mirror_seq,
                    got: b.seq,
                });
                self.degrade(now, node, s, "sequence gap", false, report);
                continue;
            }
            // In sequence: apply.
            s.mirror_seq = b.seq + 1;
            s.last_heard = now;
            if b.updates.is_empty() {
                continue; // heartbeat
            }
            let Some(m) = &s.mirror else {
                continue;
            };
            s.mirror = Some(apply(m, &b.updates));
            s.last_applied = now;
            report
                .changed
                .entry(node.clone())
                .and_modify(|t| *t = (*t).min(b.stamped))
                .or_insert(b.stamped);
            report.events.push(WatchEvent::Delta {
                node: node.clone(),
                seq: b.seq,
                updates: b.updates.len(),
            });
        }
    }

    fn check_silence(
        &mut self,
        now: SimTime,
        node: &NodeId,
        s: &mut NodeStream,
        report: &mut TickReport,
    ) {
        if !matches!(s.state, StreamState::Healthy) {
            return;
        }
        let silent = now.since(s.last_heard);
        if silent > self.cfg.silence_timeout {
            let reason = format!("silent for {silent}");
            self.degrade(now, node, s, &reason, true, report);
        }
    }

    fn try_resync(
        &mut self,
        now: SimTime,
        node: &NodeId,
        router: Option<&VirtualRouter>,
        s: &mut NodeStream,
        report: &mut TickReport,
    ) {
        let StreamState::Resyncing {
            since,
            attempts,
            next_try,
            initial,
        } = s.state.clone()
        else {
            return;
        };
        if next_try > now {
            return;
        }
        let attempts = attempts + 1;
        self.stats.resync_attempts += 1;
        let snapshot = match router {
            Some(r) => match Telemetry::from_router(r) {
                Ok(t) => Some(t),
                Err(_) => {
                    self.stats.read_errors += 1;
                    None
                }
            },
            None => None,
        };
        let Some(snapshot) = snapshot else {
            s.state = StreamState::Resyncing {
                since,
                attempts,
                next_try: now + self.resync_delay(node, attempts + 1),
                initial,
            };
            return;
        };
        // Full-snapshot resync: the mirror jumps to the device's current
        // head; the device restarts its diff base from the same snapshot
        // so the next delta applies cleanly. Sequence numbers continue —
        // anything still in flight from before the outage is now behind
        // `mirror_seq` and will be discarded as duplicate.
        s.mirror = Some(snapshot.clone());
        s.device_last = Some(snapshot);
        s.mirror_seq = s.next_seq;
        s.subscribed = true;
        s.last_heard = now;
        s.last_applied = now;
        s.last_emit = now;
        s.state = StreamState::Healthy;
        let stamp = if initial {
            self.stats.initial_syncs += 1;
            self.journal
                .push(now, "watch.sync", format!("{node}: initial sync"));
            report
                .events
                .push(WatchEvent::Synced { node: node.clone() });
            now
        } else {
            self.stats.resyncs += 1;
            self.journal.push(
                now,
                "watch.resync",
                format!("{node}: resynced after {attempts} attempt(s)"),
            );
            report.events.push(WatchEvent::Resynced {
                node: node.clone(),
                attempts,
            });
            since
        };
        report
            .changed
            .entry(node.clone())
            .and_modify(|t| *t = (*t).min(stamp))
            .or_insert(stamp);
    }

    fn emit_device(&mut self, now: SimTime, router: Option<&VirtualRouter>, s: &mut NodeStream) {
        if !s.subscribed {
            return;
        }
        let Some(router) = router else {
            // Evicted mid-subscription: the device simply stops talking;
            // the client's silence timeout will notice.
            return;
        };
        let current = match Telemetry::from_router(router) {
            Ok(t) => t,
            Err(_) => {
                self.stats.read_errors += 1;
                return;
            }
        };
        let Some(last) = &s.device_last else {
            return;
        };
        let updates = diff(last, &current);
        if updates.is_empty() {
            if now.since(s.last_emit) >= self.cfg.heartbeat_every {
                s.inflight.push_back(Batch {
                    seq: s.next_seq,
                    stamped: now,
                    deliver_at: now + self.cfg.delivery_delay,
                    updates: Vec::new(),
                });
                s.next_seq += 1;
                s.last_emit = now;
                self.stats.heartbeats_emitted += 1;
            }
            return;
        }
        s.device_last = Some(current);
        s.inflight.push_back(Batch {
            seq: s.next_seq,
            stamped: now,
            deliver_at: now + self.cfg.delivery_delay,
            updates,
        });
        s.next_seq += 1;
        s.last_emit = now;
        self.stats.batches_emitted += 1;
    }

    /// Per-node extraction status as of `now` — feeds
    /// [`mfv_verify` coverage](ExtractionStatus) so standing verdicts are
    /// qualified exactly by what the streams currently cover.
    pub fn status(&self, now: SimTime) -> BTreeMap<NodeId, ExtractionStatus> {
        let mut out = BTreeMap::new();
        for (node, s) in &self.streams {
            let st = match (&s.mirror, &s.state) {
                (None, _) => ExtractionStatus::Missing("stream never synced".into()),
                (Some(_), StreamState::Healthy) => ExtractionStatus::Fresh,
                (Some(_), StreamState::Resyncing { since, .. }) => {
                    let age = now.since(s.last_applied);
                    if age > self.cfg.max_stale {
                        ExtractionStatus::Missing(format!(
                            "stream down since {since} ({age} stale)"
                        ))
                    } else {
                        ExtractionStatus::Stale(age)
                    }
                }
            };
            out.insert(node.clone(), st);
        }
        out
    }

    /// Rebuilds a [`Dataplane`] from the current mirrors — the continuous
    /// counterpart of [`crate::dataplane_from_afts`]. Node state (FIB,
    /// addresses, up) comes entirely from mirrored telemetry; `reference`
    /// supplies link context only. Nodes whose status is `Missing` as of
    /// `now` are excluded, so the dataplane and the coverage report agree.
    pub fn dataplane(&self, now: SimTime, reference: &Dataplane) -> Dataplane {
        let status = self.status(now);
        let mut dp = Dataplane::new();
        for (node, s) in &self.streams {
            let covered = status.get(node).is_some_and(|st| st.is_covered());
            if !covered {
                continue;
            }
            let Some(t) = &s.mirror else {
                continue;
            };
            let Some(aft) = t.aft() else {
                continue;
            };
            dp.add_node(node.clone(), &aft.to_fib(), t.addresses(), t.is_up());
        }
        for link in &reference.links {
            if dp.nodes.contains_key(&link.a.0) && dp.nodes.contains_key(&link.b.0) {
                dp.add_link(link.clone());
            }
        }
        dp
    }

    /// Flushes lifetime tallies into `obs` under `watch.*` and merges the
    /// watcher's journal (gaps, losses, resyncs). Call once, at the end of
    /// a run — everything here is seed-deterministic.
    pub fn observe_into(&self, obs: &mut mfv_obs::Obs) {
        let m = &mut obs.metrics;
        m.inc("watch.batches.emitted", self.stats.batches_emitted);
        m.inc("watch.batches.heartbeats", self.stats.heartbeats_emitted);
        m.inc("watch.batches.delivered", self.stats.batches_delivered);
        m.inc("watch.batches.dropped", self.stats.batches_dropped);
        m.inc("watch.batches.discarded", self.stats.discarded);
        m.inc("watch.batches.duplicates", self.stats.duplicates);
        m.inc("watch.gaps", self.stats.gaps);
        m.inc("watch.session_losses", self.stats.session_losses);
        m.inc("watch.syncs.initial", self.stats.initial_syncs);
        m.inc("watch.resyncs", self.stats.resyncs);
        m.inc("watch.resync_attempts", self.stats.resync_attempts);
        m.inc("watch.read_errors", self.stats.read_errors);
        obs.journal.merge(self.journal.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_types::{AsNum, SimTime};
    use mfv_vrouter::VendorProfile;
    use std::net::Ipv4Addr;

    fn router(name: &str) -> VirtualRouter {
        let spec = RouterSpec::new(name, AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .network("2.2.2.1/32".parse().unwrap());
        let mut r = VirtualRouter::new(name.into(), VendorProfile::ceos(), spec.build());
        let _ = r.poll(SimTime(100));
        r
    }

    fn quiet_cfg() -> WatchConfig {
        WatchConfig {
            heartbeat_every: SimDuration::from_secs(1000),
            silence_timeout: SimDuration::from_secs(2000),
            ..Default::default()
        }
    }

    fn bytes(t: &Telemetry) -> String {
        serde_json::to_string(t.root()).expect("telemetry serialises")
    }

    fn sec(s: u64) -> SimTime {
        SimTime(s * 1000)
    }

    #[test]
    fn initial_sync_then_heartbeats_stay_fresh() {
        let r = router("r1");
        let node = NodeId::from("r1");
        let cfg = WatchConfig {
            heartbeat_every: SimDuration::from_secs(2),
            ..Default::default()
        };
        let mut w = Watcher::new(cfg, vec![node.clone()]);
        let rep = w.tick(sec(1), vec![(node.clone(), Some(&r))]);
        assert!(rep.changed.contains_key(&node));
        assert_eq!(w.stats().initial_syncs, 1);
        assert_eq!(bytes(w.mirror(&node).expect("mirror")), {
            let t = Telemetry::from_router(&r).expect("read");
            serde_json::to_string(t.root()).expect("ser")
        });
        for t in 2..=10u64 {
            let rep = w.tick(sec(t), vec![(node.clone(), Some(&r))]);
            assert!(rep.changed.is_empty(), "t={t}: {rep:?}");
        }
        assert!(w.stats().heartbeats_emitted >= 3);
        assert_eq!(w.stats().gaps, 0);
        assert_eq!(w.stats().session_losses, 0);
        assert_eq!(w.status(sec(10))[&node], ExtractionStatus::Fresh);
    }

    #[test]
    fn delta_propagates_with_delivery_latency() {
        let mut r = router("r1");
        let node = NodeId::from("r1");
        let mut w = Watcher::new(quiet_cfg(), vec![node.clone()]);
        w.tick(sec(1), vec![(node.clone(), Some(&r))]);

        // Change device state between ticks.
        r.set_link(&"Ethernet1".into(), false);
        let _ = r.poll(sec(2));
        // Tick 2 emits the batch (delivery is 100ms later, i.e. next tick).
        let rep = w.tick(sec(2), vec![(node.clone(), Some(&r))]);
        assert!(rep.changed.is_empty());
        assert_eq!(w.stats().batches_emitted, 1);
        // Tick 3 delivers and applies it, stamped at emit time.
        let rep = w.tick(sec(3), vec![(node.clone(), Some(&r))]);
        assert_eq!(rep.changed.get(&node), Some(&sec(2)));
        let expected = Telemetry::from_router(&r).expect("read");
        assert_eq!(
            bytes(w.mirror(&node).expect("mirror")),
            serde_json::to_string(expected.root()).expect("ser")
        );
    }

    #[test]
    fn dropped_batch_gap_triggers_single_resync() {
        let mut r = router("r1");
        let node = NodeId::from("r1");
        let mut w = Watcher::new(quiet_cfg(), vec![node.clone()]);
        w.tick(sec(1), vec![(node.clone(), Some(&r))]);

        // First change: emitted at t=2 but dropped in flight.
        w.inject_drop(&node, 1);
        r.set_link(&"Ethernet1".into(), false);
        let _ = r.poll(sec(2));
        w.tick(sec(2), vec![(node.clone(), Some(&r))]);
        w.tick(sec(3), vec![(node.clone(), Some(&r))]);
        assert_eq!(w.stats().batches_dropped, 1);

        // Second change: its delivery exposes the sequence gap.
        r.set_link(&"Ethernet1".into(), true);
        let _ = r.poll(sec(4));
        w.tick(sec(4), vec![(node.clone(), Some(&r))]);
        let rep = w.tick(sec(5), vec![(node.clone(), Some(&r))]);
        assert_eq!(w.stats().gaps, 1);
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, WatchEvent::Gap { .. })));
        assert!(matches!(
            w.status(sec(5))[&node],
            ExtractionStatus::Stale(_)
        ));

        // Next tick: backoff (~100ms) has elapsed; resync recovers the
        // mirror byte-for-byte, stamped at the degradation instant.
        let rep = w.tick(sec(6), vec![(node.clone(), Some(&r))]);
        assert_eq!(w.stats().resyncs, 1);
        assert_eq!(rep.changed.get(&node), Some(&sec(5)));
        let expected = Telemetry::from_router(&r).expect("read");
        assert_eq!(bytes(w.mirror(&node).expect("mirror")), bytes(&expected));
        assert_eq!(w.status(sec(6))[&node], ExtractionStatus::Fresh);
    }

    #[test]
    fn eviction_silence_backoff_and_recovery() {
        let r = router("r1");
        let node = NodeId::from("r1");
        let cfg = WatchConfig {
            heartbeat_every: SimDuration::from_secs(2),
            silence_timeout: SimDuration::from_secs(5),
            max_stale: SimDuration::from_secs(15),
            ..Default::default()
        };
        let mut w = Watcher::new(cfg, vec![node.clone()]);
        w.tick(sec(1), vec![(node.clone(), Some(&r))]);

        // Router evicted: heartbeats stop; silence declares the session
        // lost, then resync attempts fail with growing backoff.
        let mut lost_at = None;
        for t in 2..=30u64 {
            let rep = w.tick(sec(t), vec![(node.clone(), None)]);
            if rep
                .events
                .iter()
                .any(|e| matches!(e, WatchEvent::SessionLost { .. }))
            {
                lost_at = Some(t);
                break;
            }
        }
        let lost_at = lost_at.expect("session loss detected");
        assert_eq!(w.stats().session_losses, 1);
        for t in (lost_at + 1)..=(lost_at + 20) {
            w.tick(sec(t), vec![(node.clone(), None)]);
        }
        let attempts_during_outage = w.stats().resync_attempts;
        assert!(attempts_during_outage >= 3, "{attempts_during_outage}");
        // Backoff caps at max_backoff (2s default): attempts cannot be
        // one-per-tick for 20 ticks.
        assert!(attempts_during_outage < 20);
        // Past max_stale the node stops counting as covered.
        match &w.status(sec(lost_at + 20))[&node] {
            ExtractionStatus::Missing(reason) => {
                assert!(reason.contains("stream down"), "{reason}")
            }
            other => panic!("expected Missing, got {other:?}"),
        }

        // Router comes back: the next due attempt resyncs.
        let mut resynced = false;
        for t in (lost_at + 21)..=(lost_at + 40) {
            let rep = w.tick(sec(t), vec![(node.clone(), Some(&r))]);
            if rep
                .events
                .iter()
                .any(|e| matches!(e, WatchEvent::Resynced { .. }))
            {
                resynced = true;
                break;
            }
        }
        assert!(resynced);
        assert_eq!(w.stats().resyncs, 1);
        assert_eq!(w.status(sec(lost_at + 40))[&node], ExtractionStatus::Fresh);
    }

    #[test]
    fn faulty_stream_replays_bit_for_bit() {
        let run = || {
            let mut r = router("r1");
            let node = NodeId::from("r1");
            let cfg = WatchConfig {
                seed: 42,
                heartbeat_every: SimDuration::from_secs(1),
                faults: StreamFaultModel {
                    drop_pct: 30,
                    session_loss_pct: 10,
                },
                ..Default::default()
            };
            let mut w = Watcher::new(cfg, vec![node.clone()]);
            let mut all_events = Vec::new();
            for t in 1..=60u64 {
                if t % 7 == 0 {
                    r.set_link(&"Ethernet1".into(), t % 14 == 0);
                    let _ = r.poll(sec(t));
                }
                let rep = w.tick(sec(t), vec![(node.clone(), Some(&r))]);
                all_events.extend(rep.events);
            }
            let mirror = w.mirror(&node).map(bytes);
            (w.stats().clone(), all_events, mirror, w.status(sec(60)))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // The fault model actually bit: something was dropped or reset.
        assert!(a.0.batches_dropped + a.0.session_losses > 0, "{:?}", a.0);
    }
}
