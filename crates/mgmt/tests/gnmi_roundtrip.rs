//! Property test pinning the Subscribe stream's lossless contract:
//! `apply(old, diff(old, new)) == new`, byte for byte, over arbitrary
//! state trees. The watcher's mirror correctness rests entirely on this —
//! a single lossy diff/apply pair would silently corrupt every standing
//! verdict downstream.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use mfv_mgmt::gnmi::{apply, canonicalize, diff, Telemetry, Update};
use serde_json::Value;

/// Arbitrary JSON state trees of bounded depth.
///
/// Numbers are integers or floats with a fractional part: the vendored
/// `Number` compares `F(2.0) == U(2)` (JSON semantics), so integral floats
/// would let `diff` legitimately skip a change whose *rendering* differs —
/// structural equality would hold but the byte-identity assertion would
/// not. Real telemetry never streams integral floats.
fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<u32>().prop_map(|n| Value::from(n as u64)),
        (any::<i32>(), 1u32..1000)
            .prop_map(|(n, frac)| Value::from(n as f64 + frac as f64 / 1024.0)),
        "[a-z]{0,8}".prop_map(Value::from),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        leaf,
        proptest::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::Array),
        proptest::collection::vec(("[a-z]{1,6}", arb_value(depth - 1)), 0..5)
            .prop_map(|kvs| { Value::Object(kvs.into_iter().collect()) }),
    ]
    .boxed()
}

fn bytes(v: &Value) -> String {
    serde_json::to_string(v).expect("value serialises")
}

proptest! {
    // The tentpole invariant: a Subscribe stream reconstructs the new
    // snapshot exactly, starting from any old snapshot.
    #[test]
    fn apply_inverts_diff(old in arb_value(3), new in arb_value(3)) {
        let t_old = Telemetry::from_root(old);
        let t_new = Telemetry::from_root(new);
        let updates = diff(&t_old, &t_new);
        let rebuilt = apply(&t_old, &updates);
        prop_assert_eq!(bytes(rebuilt.root()), bytes(t_new.root()));
    }

    // Identical trees diff to nothing, whatever their shape.
    #[test]
    fn self_diff_is_empty(v in arb_value(3)) {
        let t = Telemetry::from_root(v);
        prop_assert!(diff(&t, &t).is_empty());
    }

    // diff output is already canonical: canonicalize is a fixpoint.
    #[test]
    fn diff_is_canonical(old in arb_value(3), new in arb_value(3)) {
        let t_old = Telemetry::from_root(old);
        let t_new = Telemetry::from_root(new);
        let updates = diff(&t_old, &t_new);
        let canon = canonicalize(updates.clone());
        prop_assert_eq!(updates, canon);
    }

    // Canonicalizing an arbitrary (possibly redundant, unordered) batch
    // preserves apply semantics — on trees where the touched paths' parent
    // chains exist as containers, the scope canonicalize documents (diff
    // output always qualifies; the saturation step below makes arbitrary
    // batches qualify too).
    #[test]
    fn canonicalize_preserves_apply(
        base in arb_value(3),
        batch in proptest::collection::vec(
            (
                // 1–3 short segments drawn from a tiny alphabet, so batches
                // actually collide on ancestors/descendants.
                proptest::collection::vec("[a-c]{1,2}", 1..4),
                proptest::option::of(arb_value(2)),
            ),
            0..6,
        ),
    ) {
        let updates: Vec<Update> = batch
            .into_iter()
            .map(|(segs, value)| Update {
                path: segs.iter().map(|s| format!("/{s}")).collect::<String>(),
                value,
            })
            .collect();
        // Saturate the base: pre-create every touched path (ancestors
        // first), so each parent chain exists as a container.
        let mut t = Telemetry::from_root(base);
        let mut paths: Vec<String> = updates.iter().map(|u| u.path.clone()).collect();
        paths.sort();
        for path in paths {
            t = apply(&t, &[Update { path, value: Some(Value::from(0u64)) }]);
        }
        let direct = apply(&t, &updates);
        let canon = canonicalize(updates);
        let via_canon = apply(&t, &canon);
        prop_assert_eq!(bytes(direct.root()), bytes(via_canon.root()));
    }
}
