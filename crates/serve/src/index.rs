//! The forwarding-equivalence-class query index and the request protocol.
//!
//! One [`QueryIndex`] is built per served snapshot and shared (via `Arc`)
//! by every server worker. All query handling is `&self`: the underlying
//! [`ForwardingAnalysis`] memoises per-(source, scope) class partitions
//! internally, so concurrent workers race only on a cache that returns
//! identical values for identical keys — answers are a pure function of
//! the request, whichever worker handles it.

use std::fmt::Write as _;
use std::net::Ipv4Addr;

use mfv_dataplane::Dataplane;
use mfv_types::{IpSet, NodeId};
use mfv_verify::{differential_reachability_with, reachability, ForwardingAnalysis};

/// Outcome of one request line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Reply {
    /// Success; payload is the answer text.
    Ok(String),
    /// Failure; payload is the error text. The connection stays usable.
    Err(String),
    /// Client asked to close the connection (`QUIT`).
    Quit,
}

/// Encodes a reply in the wire framing: a `OK <len>\n` / `ERR <len>\n`
/// header line, then exactly `<len>` payload bytes (no trailing newline —
/// the length prefix is the only delimiter, so payloads may themselves be
/// multi-line).
pub fn encode(reply: &Reply) -> Vec<u8> {
    let (tag, payload) = match reply {
        Reply::Ok(p) => ("OK", p.as_str()),
        Reply::Err(p) => ("ERR", p.as_str()),
        Reply::Quit => ("OK", "bye"),
    };
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(tag.as_bytes());
    out.extend_from_slice(b" ");
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.extend_from_slice(b"\n");
    out.extend_from_slice(payload.as_bytes());
    out
}

/// A snapshot loaded for serving: the verified dataplane's forwarding
/// analysis (whose memo is the class-lookup index) plus an optional
/// baseline analysis for differential queries.
pub struct QueryIndex {
    fa: ForwardingAnalysis,
    baseline: Option<ForwardingAnalysis>,
}

impl QueryIndex {
    /// Builds the index over a verified snapshot's dataplane.
    pub fn new(dp: &Dataplane) -> QueryIndex {
        QueryIndex {
            fa: ForwardingAnalysis::new(dp),
            baseline: None,
        }
    }

    /// Like [`QueryIndex::new`], plus a baseline dataplane (e.g. the
    /// model-computed one) that `DIFF` queries compare against.
    pub fn with_baseline(dp: &Dataplane, baseline: &Dataplane) -> QueryIndex {
        QueryIndex {
            fa: ForwardingAnalysis::new(dp),
            baseline: Some(ForwardingAnalysis::new(baseline)),
        }
    }

    /// Precomputes the full-destination-space class partition for every
    /// entry node, so steady-state point queries never pay the symbolic
    /// exploration. Returns the total number of packet classes indexed.
    pub fn warm(&self) -> usize {
        let full = IpSet::full();
        let mut classes = 0usize;
        for src in self.fa.node_names() {
            classes += self.fa.dispositions_from_shared(&src, &full).len();
        }
        if let Some(base) = &self.baseline {
            for src in base.node_names() {
                base.dispositions_from_shared(&src, &full);
            }
        }
        classes
    }

    /// Entry nodes the index can answer for.
    pub fn node_names(&self) -> Vec<NodeId> {
        self.fa.node_names()
    }

    /// `(hits, misses)` of the shared class-partition memo.
    pub fn memo_stats(&self) -> (usize, usize) {
        self.fa.memo_stats()
    }

    /// Dispatches one request line. Answers are deterministic: the same
    /// line against the same index always yields the same [`Reply`].
    pub fn handle(&self, line: &str) -> Reply {
        let mut it = line.split_whitespace();
        match it.next() {
            None => Reply::Err("empty request".to_string()),
            Some("REACH") => self.cmd_reach(&mut it),
            Some("FATE") => self.cmd_fate(&mut it),
            Some("TRACE") => self.cmd_trace(&mut it),
            Some("DIFF") => self.cmd_diff(&mut it),
            Some("NODES") => self.cmd_nodes(),
            Some("QUIT") => Reply::Quit,
            Some(other) => Reply::Err(format!(
                "unknown command '{other}' (try REACH, FATE, TRACE, DIFF, NODES, QUIT)"
            )),
        }
    }

    fn node_arg(&self, arg: Option<&str>, what: &str) -> Result<NodeId, Reply> {
        let Some(name) = arg else {
            return Err(Reply::Err(format!("missing {what} node")));
        };
        let node = NodeId::from(name);
        if !self.fa.dataplane().nodes.contains_key(&node) {
            return Err(Reply::Err(format!("unknown {what} node '{name}'")));
        }
        Ok(node)
    }

    fn ip_arg(arg: &str) -> Result<Ipv4Addr, Reply> {
        arg.parse()
            .map_err(|_| Reply::Err(format!("bad address '{arg}'")))
    }

    /// `REACH <src> <dst-node>` — can packets entering at `src` reach
    /// every address `dst-node` owns?
    fn cmd_reach<'a>(&self, it: &mut impl Iterator<Item = &'a str>) -> Reply {
        let src = match self.node_arg(it.next(), "source") {
            Ok(n) => n,
            Err(e) => return e,
        };
        let dst = match self.node_arg(it.next(), "destination") {
            Ok(n) => n,
            Err(e) => return e,
        };
        let report = reachability(&self.fa, &src, &dst);
        let mut out = format!(
            "src={} dst={} fully_reachable={}",
            report.src,
            report.dst_node,
            report.fully_reachable()
        );
        for (set, disp) in &report.failed {
            let _ = write!(out, "\nfailed {set} [{disp}]");
        }
        Reply::Ok(out)
    }

    /// `FATE <src> <dst-ip> [dst-ip ...]` — the disposition of each
    /// destination for packets entering at `src`. Any number of addresses
    /// batch into the same class-partition lookup: the partition is
    /// computed (or memo-served) once, each address is then a row scan.
    fn cmd_fate<'a>(&self, it: &mut impl Iterator<Item = &'a str>) -> Reply {
        let src = match self.node_arg(it.next(), "source") {
            Ok(n) => n,
            Err(e) => return e,
        };
        let mut out = String::new();
        let mut any = false;
        for arg in it {
            let ip = match Self::ip_arg(arg) {
                Ok(ip) => ip,
                Err(e) => return e,
            };
            let disp = self.fa.fate_of(&src, ip);
            if any {
                out.push('\n');
            }
            let _ = write!(out, "{ip} [{disp}]");
            any = true;
        }
        if !any {
            return Reply::Err("missing destination address".to_string());
        }
        Reply::Ok(out)
    }

    /// `TRACE <src> <dst-ip>` — single-packet traceroute (first ECMP
    /// branch, as a hashing dataplane would pick for one flow).
    fn cmd_trace<'a>(&self, it: &mut impl Iterator<Item = &'a str>) -> Reply {
        let src = match self.node_arg(it.next(), "source") {
            Ok(n) => n,
            Err(e) => return e,
        };
        let Some(arg) = it.next() else {
            return Reply::Err("missing destination address".to_string());
        };
        let ip = match Self::ip_arg(arg) {
            Ok(ip) => ip,
            Err(e) => return e,
        };
        let trace = self.fa.trace(&src, ip);
        let mut out = String::new();
        for (i, hop) in trace.hops.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            match &hop.egress {
                Some(e) => {
                    let _ = write!(out, "{:>2}  {} (out {e})", i + 1, hop.node);
                }
                None => {
                    let _ = write!(out, "{:>2}  {}", i + 1, hop.node);
                }
            }
        }
        let _ = write!(out, "\n=> {}", trace.disposition);
        Reply::Ok(out)
    }

    /// `DIFF [scope-cidr]` — differential reachability of the served
    /// snapshot against the loaded baseline, optionally scoped.
    fn cmd_diff<'a>(&self, it: &mut impl Iterator<Item = &'a str>) -> Reply {
        let Some(base) = &self.baseline else {
            return Reply::Err("no baseline loaded (start the server with one)".to_string());
        };
        let scope = match it.next() {
            Some(cidr) => match cidr.parse() {
                Ok(p) => Some(IpSet::from_prefix(&p)),
                Err(_) => return Reply::Err(format!("bad scope '{cidr}'")),
            },
            None => None,
        };
        let findings = differential_reachability_with(base, &self.fa, scope.as_ref());
        let mut out = format!("{} fate-changed classes", findings.len());
        for f in &findings {
            let _ = write!(out, "\n{f}");
        }
        Reply::Ok(out)
    }

    /// `NODES` — the entry nodes, one per line, in name order.
    fn cmd_nodes(&self) -> Reply {
        let mut out = String::new();
        for (i, n) in self.fa.node_names().iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(n.as_str());
        }
        Reply::Ok(out)
    }
}
