//! The query-serving front end: load a verified snapshot once, precompute
//! the forwarding-equivalence-class index, and answer operator queries
//! over TCP for the life of the snapshot.
//!
//! The one-shot pipeline answers one question per process; an operator
//! debugging an incident asks hundreds ("can r3 reach 10.9.0.1? what
//! about 10.9.0.2? trace it"). Re-running symbolic analysis per question
//! would be O(network) every time, when the expensive part — the per-source
//! partition of the full destination space into packet classes — is a pure
//! function of the snapshot. So:
//!
//! - [`QueryIndex`] wraps a [`mfv_verify::ForwardingAnalysis`] whose
//!   internal memo IS the class index: the first query from a source
//!   computes its full-space partition, every later point query from that
//!   source is a lookup. [`QueryIndex::warm`] precomputes all of them up
//!   front. This is the same shared class-lookup structure the standing
//!   (watch-mode) queries re-evaluate through — one index, two front ends.
//! - [`Server`] shares one `Arc<QueryIndex>` across blocking worker
//!   threads; the index is internally synchronized, so any worker can
//!   serve any query and all workers return byte-identical answers.
//!
//! The wire protocol is a length-prefixed line protocol: requests are
//! single lines (`REACH r1 r4`), responses are `OK <len>\n` or
//! `ERR <len>\n` followed by exactly `<len>` payload bytes. See
//! [`index::Reply`] and [`index::encode`].

pub mod index;
pub mod server;

pub use index::{encode, QueryIndex, Reply};
pub use server::{query_once, Server, ServerConfig, ServerHandle};
