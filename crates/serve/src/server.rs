//! The TCP front end: blocking worker threads sharing one listener and
//! one [`QueryIndex`].
//!
//! Workers race on `accept` — the kernel hands each incoming connection
//! to exactly one — and then serve that connection to completion, one
//! request line at a time. Because every answer is a pure function of
//! `(index, request line)`, the worker count is a throughput knob only:
//! any client sees byte-identical answers at any `workers` setting, a
//! contract the crate's determinism tests pin.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::index::{encode, QueryIndex, Reply};

/// How the server binds and scales.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1; `0` picks an ephemeral port (read
    /// it back from [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads sharing the accept loop. Clamped to at least 1.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 0,
            workers: 4,
        }
    }
}

/// Lifetime counters, exported as `serve.*` observability metrics.
/// `SeqCst` everywhere: these are cross-thread totals folded into
/// deterministic dumps, never hot-path-critical.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
}

/// The running server: worker threads plus the shared state needed to
/// stop them and to export their counters.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    index: Arc<QueryIndex>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(connections, queries, errors)` served so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.counters.connections.load(Ordering::SeqCst),
            self.counters.queries.load(Ordering::SeqCst),
            self.counters.errors.load(Ordering::SeqCst),
        )
    }

    /// Folds the server's counters and the index's memo stats into `obs`.
    pub fn observe_into(&self, obs: &mut mfv_obs::Obs) {
        let (conns, queries, errors) = self.stats();
        obs.metrics.inc("serve.connections", conns);
        obs.metrics.inc("serve.queries", queries);
        obs.metrics.inc("serve.errors", errors);
        let (hits, misses) = self.index.memo_stats();
        obs.metrics.inc("serve.memo.hits", hits as u64);
        obs.metrics.inc("serve.memo.misses", misses as u64);
    }

    /// Blocks until the worker threads exit — i.e. forever, unless
    /// something else stops the process. `mfvctl serve` parks on this
    /// after printing the bound address.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Stops accepting, wakes every worker parked in `accept`, and joins
    /// them. Workers finish their in-flight connection first, so callers
    /// should close client connections before shutting down.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // One self-connection per worker: each wakes exactly one accept
        // call, whose worker then observes the stop flag and exits.
        for _ in 0..self.threads.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts the query server; use [`ServerHandle::shutdown`] to stop it.
pub struct Server;

impl Server {
    pub fn start(index: Arc<QueryIndex>, cfg: &ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let workers = cfg.workers.max(1);
        let mut threads = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = Arc::clone(&listener);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let index = Arc::clone(&index);
            threads.push(std::thread::spawn(move || {
                worker_loop(&listener, &stop, &index, &counters);
            }));
        }
        Ok(ServerHandle {
            addr,
            stop,
            threads,
            counters,
            index,
        })
    }
}

fn worker_loop(listener: &TcpListener, stop: &AtomicBool, index: &QueryIndex, counters: &Counters) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        counters.connections.fetch_add(1, Ordering::SeqCst);
        // A client-side I/O failure kills that connection only.
        let _ = serve_connection(conn, index, counters);
    }
}

/// Serves one connection: one request line in, one length-prefixed reply
/// out, until `QUIT` or EOF.
fn serve_connection(conn: TcpStream, index: &QueryIndex, counters: &Counters) -> io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        counters.queries.fetch_add(1, Ordering::SeqCst);
        let reply = if trimmed == "STATS" {
            // Served here, not in the index: stats are server state and
            // deliberately outside the deterministic-answer contract.
            let mut out = String::new();
            let (conns, queries, errors) = (
                counters.connections.load(Ordering::SeqCst),
                counters.queries.load(Ordering::SeqCst),
                counters.errors.load(Ordering::SeqCst),
            );
            let (hits, misses) = index.memo_stats();
            out.push_str(&format!(
                "connections {conns}\nqueries {queries}\nerrors {errors}\n\
                 memo_hits {hits}\nmemo_misses {misses}\nnodes {}",
                index.node_names().len()
            ));
            Reply::Ok(out)
        } else {
            index.handle(trimmed)
        };
        if matches!(reply, Reply::Err(_)) {
            counters.errors.fetch_add(1, Ordering::SeqCst);
        }
        writer.write_all(&encode(&reply))?;
        writer.flush()?;
        if matches!(reply, Reply::Quit) {
            return Ok(());
        }
    }
}

/// A minimal blocking client for the wire protocol — used by `mfvctl
/// query`, the smoke script, and the determinism tests. Sends one request
/// line, reads one length-prefixed reply, returns `(ok, payload)`.
pub fn query_once(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    request: &str,
) -> io::Result<(bool, String)> {
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before replying",
        ));
    }
    let mut parts = header.split_whitespace();
    let tag = parts.next().unwrap_or("");
    let ok = match tag {
        "OK" => true,
        "ERR" => false,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad reply header tag '{other}'"),
            ))
        }
    };
    let len: usize = parts
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad reply length"))?;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 payload"))?;
    Ok((ok, text))
}
