//! End-to-end tests for the query front end: protocol behaviour over a
//! real TCP socket, and the determinism contract — concurrent clients get
//! byte-identical answers at any worker count.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter};
use std::net::{Ipv4Addr, TcpStream};
use std::sync::Arc;

use mfv_dataplane::Dataplane;
use mfv_routing::rib::{Fib, FibEntry, FibNextHop};
use mfv_serve::{query_once, QueryIndex, Reply, Server, ServerConfig};
use mfv_types::{LinkId, NodeId, Prefix, RouteProtocol};

/// A line of `n` routers r00..r{n-1}: each owns 10.0.i.1, routes
/// 10.0.0.0/16 left or right toward the owner, with a hole at the far
/// ends (traffic past the edge exits the network).
fn line_dp(n: usize) -> Dataplane {
    let mut dp = Dataplane::new();
    for i in 0..n {
        let mut fib = Fib::new();
        for j in 0..n {
            if j == i {
                continue;
            }
            let iface = if j < i { "left" } else { "right" };
            fib.insert(FibEntry {
                prefix: Prefix::from_bits(u32::from(Ipv4Addr::new(10, 0, j as u8, 0)), 24),
                proto: RouteProtocol::Isis,
                next_hops: vec![FibNextHop {
                    iface: iface.into(),
                    via: None,
                }],
            });
        }
        let mut owned = BTreeSet::new();
        owned.insert(Ipv4Addr::new(10, 0, i as u8, 1));
        dp.add_node(NodeId::from(format!("r{i:02}").as_str()), &fib, owned, true);
    }
    for i in 0..n.saturating_sub(1) {
        dp.add_link(LinkId::new(
            (NodeId::from(format!("r{i:02}").as_str()), "right".into()),
            (
                NodeId::from(format!("r{:02}", i + 1).as_str()),
                "left".into(),
            ),
        ));
    }
    dp
}

/// The scripted batch every determinism client replays.
fn batch(n: usize) -> Vec<String> {
    let mut reqs = vec!["NODES".to_string()];
    for i in 0..n {
        for j in 0..n {
            reqs.push(format!("REACH r{i:02} r{j:02}"));
        }
        reqs.push(format!("FATE r{i:02} 10.0.0.1 10.0.{}.1 10.9.9.9", n - 1));
        reqs.push(format!("TRACE r{i:02} 10.0.{}.1", n - 1));
    }
    reqs.push("BOGUS".to_string());
    reqs.push("REACH r00 nope".to_string());
    reqs
}

fn run_batch(addr: std::net::SocketAddr, reqs: &[String]) -> Vec<(bool, String)> {
    let conn = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut writer = BufWriter::new(conn);
    reqs.iter()
        .map(|r| query_once(&mut reader, &mut writer, r).expect("query"))
        .collect()
}

#[test]
fn protocol_answers_over_tcp() {
    let dp = line_dp(4);
    let index = Arc::new(QueryIndex::new(&dp));
    index.warm();
    let handle = Server::start(Arc::clone(&index), &ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    let conn = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut writer = BufWriter::new(conn);

    let (ok, nodes) = query_once(&mut reader, &mut writer, "NODES").expect("nodes");
    assert!(ok);
    assert_eq!(nodes, "r00\nr01\nr02\nr03");

    let (ok, reach) = query_once(&mut reader, &mut writer, "REACH r00 r03").expect("reach");
    assert!(ok);
    assert_eq!(reach, "src=r00 dst=r03 fully_reachable=true");

    let (ok, fate) = query_once(&mut reader, &mut writer, "FATE r00 10.0.3.1").expect("fate");
    assert!(ok);
    assert_eq!(fate, "10.0.3.1 [accepted at r03]");

    let (ok, trace) = query_once(&mut reader, &mut writer, "TRACE r00 10.0.3.1").expect("trace");
    assert!(ok, "{trace}");
    assert!(trace.contains("r00"), "{trace}");
    assert!(trace.ends_with("=> accepted at r03"), "{trace}");

    // Unknown commands and unknown nodes are ERR replies, and the
    // connection survives them.
    let (ok, err) = query_once(&mut reader, &mut writer, "BOGUS").expect("bogus");
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
    let (ok, err) = query_once(&mut reader, &mut writer, "REACH r00 r99").expect("bad node");
    assert!(!ok);
    assert!(err.contains("unknown destination node"), "{err}");
    let (ok, _) = query_once(&mut reader, &mut writer, "STATS").expect("stats");
    assert!(ok);
    let (ok, bye) = query_once(&mut reader, &mut writer, "QUIT").expect("quit");
    assert!(ok);
    assert_eq!(bye, "bye");

    let (_, queries, errors) = handle.stats();
    assert!(queries >= 8);
    assert_eq!(errors, 2);
    handle.shutdown();
}

#[test]
fn diff_query_reports_baseline_divergence() {
    let dp = line_dp(3);
    // Baseline: r01's FIB wiped — everything through the middle dies.
    let mut baseline = dp.clone();
    if let Some(mid) = baseline.nodes.get_mut(&NodeId::from("r01")) {
        mid.entries.clear();
    }
    let index = QueryIndex::with_baseline(&dp, &baseline);
    match index.handle("DIFF") {
        Reply::Ok(out) => {
            assert!(!out.starts_with("0 fate-changed"), "{out}");
            assert!(out.contains("from r00"), "{out}");
        }
        other => panic!("{other:?}"),
    }
    match index.handle("DIFF 10.0.0.0/16") {
        Reply::Ok(out) => assert!(out.contains("fate-changed"), "{out}"),
        other => panic!("{other:?}"),
    }
    // Without a baseline, DIFF is a protocol error, not a panic.
    let bare = QueryIndex::new(&dp);
    assert!(matches!(bare.handle("DIFF"), Reply::Err(_)));
}

/// The determinism contract: any number of concurrent clients, at any
/// worker count, see answers byte-identical to a single-threaded direct
/// evaluation of the same batch.
#[test]
fn concurrent_clients_get_identical_answers_at_any_worker_count() {
    let n = 5;
    let dp = line_dp(n);
    let reqs = batch(n);

    // Reference: direct, single-threaded evaluation against the index.
    let reference: Vec<(bool, String)> = {
        let index = QueryIndex::new(&dp);
        reqs.iter()
            .map(|r| match index.handle(r) {
                Reply::Ok(p) => (true, p),
                Reply::Err(p) => (false, p),
                Reply::Quit => (true, "bye".to_string()),
            })
            .collect()
    };

    for workers in [1usize, 2, 8] {
        let index = Arc::new(QueryIndex::new(&dp));
        index.warm();
        let cfg = ServerConfig { port: 0, workers };
        let handle = Server::start(Arc::clone(&index), &cfg).expect("bind");
        let addr = handle.addr();

        let clients: Vec<_> = (0..4)
            .map(|_| {
                let reqs = reqs.clone();
                std::thread::spawn(move || run_batch(addr, &reqs))
            })
            .collect();
        for c in clients {
            let answers = c.join().expect("client thread");
            assert_eq!(answers, reference, "answers diverged at {workers} workers");
        }
        handle.shutdown();
    }
}
