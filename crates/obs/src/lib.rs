//! `mfv-obs` — deterministic observability for the verification pipeline.
//!
//! The paper's pitch is *accessible* verification: an operator must be able
//! to see what the emulation did — convergence timelines, extraction
//! coverage, where wall-time went — not just a final verdict. This crate is
//! the shared sink every pipeline stage flushes into: a metrics registry
//! ([`Metrics`]: counters, gauges, log2-bucket histograms), span-style phase
//! timers ([`SimPhases`] on the virtual clock, [`WallSection`] on the real
//! one), and a ring-buffered structured event journal ([`Journal`]).
//!
//! # Determinism contract
//!
//! Everything outside [`Obs::wall`] is derived from sim-time, seeded
//! randomness, and event counts only: two runs of the same
//! `(topology, seed, chaos plan)` produce **byte-identical**
//! `to_json(false)` dumps. Wall-clock readings are quarantined in
//! [`wall`] — the one module allowed to touch `Instant` (D2 lint scope) —
//! and serialized under a separate `"wall"` key that `to_json(false)`
//! omits. The `obs_determinism` integration test and the CI obs-smoke step
//! enforce the contract on every change.
//!
//! # Metric naming
//!
//! Names are `&'static str` in `<stage>.<subsystem>.<what>` form
//! (`engine.events.deliver_bgp`, `mgmt.rpc.retries`, `verify.memo.hits`).
//! Static names keep the hot path allocation-free and the BTreeMap-backed
//! registry keeps dump order stable without a sort pass.
//!
//! # Hot-path discipline
//!
//! Instrumented components do *not* call into the registry per event —
//! they keep plain `u64` field counters (or a local [`Hist`]) and flush
//! once at collection points via `Metrics::inc`/`merge_hist`. A metrics
//! update is a BTreeMap lookup; a field increment is one add.

pub mod journal;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod wall;

pub use journal::{Event, Journal};
pub use metrics::{Hist, Metrics};
pub use phase::{SimPhases, SimSpan, PHASES};
pub use wall::{WallSection, WallTimer};

/// The full observability state for one pipeline run: deterministic
/// sections (metrics, sim phases, journal) plus the quarantined wall-time
/// section.
#[derive(Clone, Default, Debug)]
pub struct Obs {
    /// Deterministic counters/gauges/histograms.
    pub metrics: Metrics,
    /// Sim-time span per pipeline phase (boot/flood/converge/extract/verify).
    pub phases: SimPhases,
    /// Ring-buffered structured events (sim-time stamped).
    pub journal: Journal,
    /// Wall-clock section — excluded from determinism comparisons.
    pub wall: WallSection,
}

impl Obs {
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Folds another `Obs` into this one: counters and histograms add,
    /// phases and gauges take the other's values where present, journal
    /// events append in order.
    pub fn merge(&mut self, other: Obs) {
        self.metrics.merge(&other.metrics);
        self.phases.merge(&other.phases);
        self.journal.merge(other.journal);
        self.wall.merge(&other.wall);
    }

    /// Serializes to JSON with stable key order. With `include_wall =
    /// false` the dump contains only deterministic sections and two
    /// same-seed runs must produce byte-identical output; `true` appends
    /// the `"wall"` section (never compared across runs).
    pub fn to_json(&self, include_wall: bool) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        self.metrics.write_json(&mut s, 1);
        s.push_str(",\n");
        self.phases.write_json(&mut s, 1);
        s.push_str(",\n");
        self.journal.write_json(&mut s, 1);
        if include_wall {
            s.push_str(",\n");
            self.wall.write_json(&mut s, 1);
        }
        s.push_str("\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_types::SimTime;

    fn sample() -> Obs {
        let mut obs = Obs::new();
        obs.metrics.inc("engine.crashes", 2);
        obs.metrics.inc("engine.events.deliver_bgp", 40);
        obs.metrics.gauge("engine.nodes", 3);
        obs.metrics.record("engine.wake_depth", 0);
        obs.metrics.record("engine.wake_depth", 5);
        obs.metrics.record("engine.wake_depth", 5_000);
        obs.phases.record("boot", SimTime(0), SimTime(430_000));
        obs.phases
            .record("converge", SimTime(430_000), SimTime(500_000));
        obs.journal
            .push(SimTime(450_000), "chaos.link_down", "r2:Ethernet2");
        obs.wall.add_phase("boot", 1234);
        obs.wall.metrics.inc("verify.query_wall_us", 77);
        obs
    }

    #[test]
    fn json_is_reproducible_and_separates_wall() {
        let a = sample().to_json(false);
        let b = sample().to_json(false);
        assert_eq!(a, b, "deterministic section must be byte-stable");
        assert!(!a.contains("\"wall\""));
        let full = sample().to_json(true);
        assert!(full.contains("\"wall\""));
        assert!(full.starts_with("{\n"), "{full}");
        assert!(full.ends_with("}\n"));
        // The deterministic prefix is unchanged by including wall.
        assert!(full.starts_with(a.trim_end_matches("\n}\n")));
    }

    #[test]
    fn merge_adds_counters_and_appends_journal() {
        let mut a = sample();
        let b = sample();
        a.merge(b);
        assert_eq!(a.metrics.counter("engine.crashes"), 4);
        assert_eq!(a.journal.len(), 2);
        let h = a.metrics.hist("engine.wake_depth").expect("hist exists");
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 5_000);
    }
}
