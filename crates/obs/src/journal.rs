//! Ring-buffered structured event journal.
//!
//! Captures the *story* of a run — chaos injections, crashes, restarts,
//! extraction degradations — at low frequency (never per-message). Events
//! are stamped with sim-time only, so a seeded replay reproduces the
//! journal byte-for-byte. The ring cap bounds memory on pathological runs;
//! evictions are counted, never silent.

use std::collections::VecDeque;

use mfv_types::SimTime;

use crate::json;

/// One journal entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Sim-time the event happened (never wall time).
    pub at: SimTime,
    /// Static event kind, dot-namespaced like metric names
    /// (`chaos.link_down`, `engine.crash`, `mgmt.node_stale`).
    pub kind: &'static str,
    /// Free-form detail (node/link names, counts). Must itself be
    /// deterministic — derived from topology and sim state only.
    pub detail: String,
}

/// The ring buffer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Journal {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Journal {
    pub const DEFAULT_CAP: usize = 1024;

    pub fn new() -> Journal {
        Journal::with_capacity(Self::DEFAULT_CAP)
    }

    pub fn with_capacity(cap: usize) -> Journal {
        Journal {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest once the ring is full.
    pub fn push(&mut self, at: SimTime, kind: &'static str, detail: impl Into<String>) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            at,
            kind,
            detail: detail.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// Appends another journal's events (in their order), respecting this
    /// ring's capacity.
    pub fn merge(&mut self, other: Journal) {
        self.dropped += other.dropped;
        for e in other.events {
            if self.events.len() == self.cap {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(e);
        }
    }

    pub(crate) fn write_json(&self, out: &mut String, indent: usize) {
        json::key_into(out, indent, "journal");
        out.push_str(&format!("{{\"dropped\": {}, \"events\": [", self.dropped));
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            json::indent_into(out, indent + 1);
            out.push_str(&format!("{{\"t_ms\": {}, \"kind\": \"", e.at.as_millis()));
            json::escape_into(out, e.kind);
            out.push_str("\", \"detail\": \"");
            json::escape_into(out, &e.detail);
            out.push_str("\"}");
        }
        if !self.events.is_empty() {
            out.push('\n');
            json::indent_into(out, indent);
        }
        out.push_str("]}");
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut j = Journal::with_capacity(2);
        j.push(SimTime(1), "a", "");
        j.push(SimTime(2), "b", "");
        j.push(SimTime(3), "c", "");
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 1);
        let kinds: Vec<_> = j.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["b", "c"]);
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = Journal::with_capacity(8);
        a.push(SimTime(1), "x", "");
        let mut b = Journal::with_capacity(8);
        b.push(SimTime(2), "y", "");
        a.merge(b);
        let kinds: Vec<_> = a.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["x", "y"]);
    }
}
