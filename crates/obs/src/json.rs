//! Minimal hand-rolled JSON writing helpers.
//!
//! The obs dump format is flat maps of statically-named numbers plus short
//! journal strings; hand-rolling (like `mfv-lint` does) keeps this crate
//! dependency-free and the output byte-stable — no serializer version can
//! ever perturb the determinism fixtures.

/// Appends `s` JSON-escaped (quotes not included).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// Appends `indent` levels of two-space indentation.
pub fn indent_into(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Appends `"key": ` at the given indent.
pub fn key_into(out: &mut String, indent: usize, key: &str) {
    indent_into(out, indent);
    out.push('"');
    escape_into(out, key);
    out.push_str("\": ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn key_writes_indent_and_colon() {
        let mut s = String::new();
        key_into(&mut s, 2, "counters");
        assert_eq!(s, "    \"counters\": ");
    }
}
