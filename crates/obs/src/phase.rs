//! Sim-time phase spans: where the *virtual* clock went, per pipeline
//! stage. The wall-clock twin lives in [`crate::wall`]; keeping the two in
//! separate types (and separate JSON sections) is what makes the
//! determinism contract checkable.

use std::collections::BTreeMap;

use mfv_types::{SimDuration, SimTime};

use crate::json;

/// Canonical pipeline phase names, in pipeline order. `SimPhases` accepts
/// any static name, but instrumented code sticks to these so dumps line up
/// across stages.
pub const PHASES: [&str; 5] = ["boot", "flood", "converge", "extract", "verify"];

/// One phase's sim-time span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimSpan {
    pub start: SimTime,
    pub end: SimTime,
}

impl SimSpan {
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Phase name → sim span. Ordered iteration (BTreeMap) keeps dumps stable;
/// `PartialEq` lets `RunReport` carry one and stay replay-comparable.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SimPhases {
    spans: BTreeMap<&'static str, SimSpan>,
}

impl SimPhases {
    pub fn new() -> SimPhases {
        SimPhases::default()
    }

    /// Records (or overwrites) a phase span.
    pub fn record(&mut self, phase: &'static str, start: SimTime, end: SimTime) {
        self.spans.insert(phase, SimSpan { start, end });
    }

    pub fn get(&self, phase: &str) -> Option<SimSpan> {
        self.spans.get(phase).copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, SimSpan)> + '_ {
        self.spans.iter().map(|(k, v)| (*k, *v))
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Takes the other's spans where present (later pipeline stages write
    /// later phases).
    pub fn merge(&mut self, other: &SimPhases) {
        for (phase, span) in &other.spans {
            self.spans.insert(phase, *span);
        }
    }

    pub(crate) fn write_json(&self, out: &mut String, indent: usize) {
        json::key_into(out, indent, "phases_sim_ms");
        out.push('{');
        for (i, (phase, span)) in self.spans.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            json::key_into(out, indent + 1, phase);
            out.push_str(&format!(
                "{{\"start\": {}, \"end\": {}, \"duration\": {}}}",
                span.start.as_millis(),
                span.end.as_millis(),
                span.duration().as_millis()
            ));
        }
        if !self.spans.is_empty() {
            out.push('\n');
            json::indent_into(out, indent);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_duration() {
        let mut p = SimPhases::new();
        p.record("boot", SimTime(0), SimTime(430_000));
        let span = p.get("boot").expect("recorded");
        assert_eq!(span.duration(), SimDuration::from_millis(430_000));
        assert!(p.get("verify").is_none());
    }

    #[test]
    fn merge_prefers_latest_writer() {
        let mut a = SimPhases::new();
        a.record("boot", SimTime(0), SimTime(1));
        let mut b = SimPhases::new();
        b.record("boot", SimTime(0), SimTime(2));
        b.record("extract", SimTime(2), SimTime(3));
        a.merge(&b);
        assert_eq!(a.get("boot").map(|s| s.end), Some(SimTime(2)));
        assert_eq!(a.iter().count(), 2);
    }
}
