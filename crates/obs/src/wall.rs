//! The explicitly-marked wall-time section.
//!
//! This module is the **one** place in the workspace allowed to read the
//! wall clock. Every other crate that wants wall timings goes through
//! [`WallTimer`], and everything measured lands in a [`WallSection`] that
//! serializes under the `"wall"` JSON key — which `Obs::to_json(false)`
//! omits, so wall readings can never leak into determinism comparisons.
//! The D2 lint rule bans `Instant`/`SystemTime` everywhere else; the
//! file-wide allow below is the sanctioned exception.
//!
// mfv-lint: allow-file(D2, this module IS the wall-time section — readings stay in WallSection and are serialized under the separate wall key that determinism diffs exclude)

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json;
use crate::metrics::Metrics;

/// A started wall-clock stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    pub fn start() -> WallTimer {
        WallTimer {
            start: Instant::now(),
        }
    }

    /// Microseconds since `start()`, saturating at `u64::MAX`.
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Wall-clock observations: per-phase elapsed time plus any wall-derived
/// metrics (e.g. per-query verify latency histograms). Excluded from
/// determinism comparisons by construction.
#[derive(Clone, Default, Debug)]
pub struct WallSection {
    phases_us: BTreeMap<&'static str, u64>,
    /// Wall-derived counters/histograms (latencies in microseconds).
    pub metrics: Metrics,
}

impl WallSection {
    pub fn new() -> WallSection {
        WallSection::default()
    }

    /// Adds elapsed microseconds to a phase (accumulates across calls, so
    /// a phase entered repeatedly sums).
    pub fn add_phase(&mut self, phase: &'static str, micros: u64) {
        let slot = self.phases_us.entry(phase).or_insert(0);
        *slot = slot.saturating_add(micros);
    }

    /// Times `f`, charging its elapsed wall time to `phase`.
    pub fn time_phase<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let timer = WallTimer::start();
        let out = f();
        self.add_phase(phase, timer.elapsed_micros());
        out
    }

    pub fn phase_micros(&self, phase: &str) -> Option<u64> {
        self.phases_us.get(phase).copied()
    }

    pub fn merge(&mut self, other: &WallSection) {
        for (phase, us) in &other.phases_us {
            self.add_phase(phase, *us);
        }
        self.metrics.merge(&other.metrics);
    }

    pub(crate) fn write_json(&self, out: &mut String, indent: usize) {
        json::key_into(out, indent, "wall");
        out.push_str("{\n");
        json::key_into(out, indent + 1, "phases_us");
        out.push('{');
        for (i, (phase, us)) in self.phases_us.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            json::key_into(out, indent + 2, phase);
            out.push_str(&us.to_string());
        }
        if !self.phases_us.is_empty() {
            out.push('\n');
            json::indent_into(out, indent + 1);
        }
        out.push_str("},\n");
        self.metrics.write_json(out, indent + 1);
        out.push('\n');
        json::indent_into(out, indent);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_something_nonnegative() {
        let t = WallTimer::start();
        // No sleeping in tests: just check monotonicity of the API.
        let a = t.elapsed_micros();
        let b = t.elapsed_micros();
        assert!(b >= a);
    }

    #[test]
    fn phases_accumulate() {
        let mut w = WallSection::new();
        w.add_phase("extract", 10);
        w.add_phase("extract", 5);
        assert_eq!(w.phase_micros("extract"), Some(15));
        let out = w.time_phase("verify", || 42);
        assert_eq!(out, 42);
        assert!(w.phase_micros("verify").is_some());
    }
}
