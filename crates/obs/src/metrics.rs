//! The metrics registry: counters, gauges, and log2-bucket histograms
//! keyed by `&'static str` names.
//!
//! BTreeMap-backed on purpose: dump order must be stable across runs and
//! platforms without a sort pass (and the D1 lint rule bans hash maps here
//! anyway). Hot paths never touch the registry per event — they keep plain
//! field counters or a local [`Hist`] and flush at collection points.

use std::collections::BTreeMap;

use crate::json;

/// A fixed-size log2-bucket histogram: bucket `i` counts values whose bit
/// length is `i` (bucket 0 holds exact zeros; the last bucket saturates).
/// Recording is two adds, a compare, and an array bump — cheap enough for
/// the engine's per-iteration wake-set depth.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    buckets: [u64; Hist::BUCKETS],
}

impl Hist {
    /// Bit lengths 0..=32 cover every value this codebase records (depths,
    /// counts, microseconds); larger values saturate into the last bucket.
    pub const BUCKETS: usize = 33;

    pub fn new() -> Hist {
        Hist::default()
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
        let bit_len = (u64::BITS - v.leading_zeros()) as usize;
        let idx = bit_len.min(Self::BUCKETS - 1);
        if let Some(slot) = self.buckets.get_mut(idx) {
            *slot += 1;
        }
    }

    /// Folds another histogram into this one.
    pub fn add(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty buckets as `(bit_length, count)` pairs in ascending order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i, *c))
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
            self.count, self.sum, self.max
        ));
        for (i, (bit_len, count)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{bit_len}, {count}]"));
        }
        out.push_str("]}");
    }
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; Hist::BUCKETS],
        }
    }
}

/// The registry. All three maps iterate in name order, so JSON output is
/// byte-stable for a given set of recordings.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `by` to the named counter.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(by);
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Records one observation into the named histogram.
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Folds a locally-aggregated histogram into the named one (the
    /// flush-at-collection-point path).
    pub fn merge_hist(&mut self, name: &'static str, h: &Hist) {
        if !h.is_empty() {
            self.hists.entry(name).or_default().add(h);
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Folds another registry into this one: counters and histograms add,
    /// gauges take the other's (latest) values.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            self.inc(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, h) in &other.hists {
            self.merge_hist(name, h);
        }
    }

    pub(crate) fn write_json(&self, out: &mut String, indent: usize) {
        json::key_into(out, indent, "counters");
        out.push('{');
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            json::key_into(out, indent + 1, name);
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push('\n');
            json::indent_into(out, indent);
        }
        out.push_str("},\n");

        json::key_into(out, indent, "gauges");
        out.push('{');
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            json::key_into(out, indent + 1, name);
            out.push_str(&v.to_string());
        }
        if !self.gauges.is_empty() {
            out.push('\n');
            json::indent_into(out, indent);
        }
        out.push_str("},\n");

        json::key_into(out, indent, "histograms");
        out.push('{');
        for (i, (name, h)) in self.hists.iter().enumerate() {
            out.push_str(if i > 0 { ",\n" } else { "\n" });
            json::key_into(out, indent + 1, name);
            h.write_json(out);
        }
        if !self.hists.is_empty() {
            out.push('\n');
            json::indent_into(out, indent);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_by_bit_length() {
        let mut h = Hist::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        h.record(u64::MAX); // saturates into the last bucket
        assert_eq!(h.count, 6);
        assert_eq!(h.max, u64::MAX);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (11, 1), (Hist::BUCKETS - 1, 1)]
        );
    }

    #[test]
    fn hist_add_folds() {
        let mut a = Hist::new();
        a.record(5);
        let mut b = Hist::new();
        b.record(7);
        b.record(100);
        a.add(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 112);
        assert_eq!(a.max, 100);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut m = Metrics::new();
        m.inc("a.b", 2);
        m.inc("a.b", 3);
        m.gauge("g", 7);
        m.gauge("g", -1);
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge_value("g"), Some(-1));
    }

    #[test]
    fn json_orders_names_lexicographically() {
        let mut m = Metrics::new();
        m.inc("z.last", 1);
        m.inc("a.first", 1);
        let mut s = String::new();
        m.write_json(&mut s, 0);
        let a = s.find("a.first").expect("a.first present");
        let z = s.find("z.last").expect("z.last present");
        assert!(a < z);
    }
}
