//! Identifier newtypes used across the stack.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// A BGP/IS-IS router identifier — by convention the loopback address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RouterId(pub Ipv4Addr);

impl RouterId {
    /// Raw 32-bit value, used for protocol tie-breaking (lowest wins).
    pub fn as_u32(&self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Debug for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid:{}", self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Ipv4Addr> for RouterId {
    fn from(a: Ipv4Addr) -> Self {
        RouterId(a)
    }
}

/// An autonomous system number (4-byte capable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AsNum(pub u32);

impl fmt::Debug for AsNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for AsNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The name of an emulated device ("r1", "spine-2", …). Unique per topology.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub String);

impl NodeId {
    pub fn new(name: impl Into<String>) -> NodeId {
        NodeId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId(s.to_string())
    }
}

impl From<String> for NodeId {
    fn from(s: String) -> Self {
        NodeId(s)
    }
}

/// An interface name on a device ("Ethernet1", "Loopback0", "ge-0/0/0").
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IfaceId(pub String);

impl IfaceId {
    pub fn new(name: impl Into<String>) -> IfaceId {
        IfaceId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Loopback interfaces never carry link traffic and are IGP-passive by
    /// default on both vendor OSes we emulate.
    pub fn is_loopback(&self) -> bool {
        let lower = self.0.to_ascii_lowercase();
        lower.starts_with("loopback") || lower.starts_with("lo")
    }
}

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for IfaceId {
    fn from(s: &str) -> Self {
        IfaceId(s.to_string())
    }
}

impl From<String> for IfaceId {
    fn from(s: String) -> Self {
        IfaceId(s)
    }
}

/// A point-to-point link between two (node, interface) endpoints.
///
/// Construction normalises endpoint order so `LinkId::new(a, b) ==
/// LinkId::new(b, a)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId {
    pub a: (NodeId, IfaceId),
    pub b: (NodeId, IfaceId),
}

impl LinkId {
    pub fn new(a: (NodeId, IfaceId), b: (NodeId, IfaceId)) -> LinkId {
        if a <= b {
            LinkId { a, b }
        } else {
            LinkId { a: b, b: a }
        }
    }

    /// Does either endpoint sit on `node`?
    pub fn touches(&self, node: &NodeId) -> bool {
        self.a.0 == *node || self.b.0 == *node
    }

    /// The endpoint opposite to `(node, iface)`, if that is one of ours.
    pub fn peer_of(&self, node: &NodeId, iface: &IfaceId) -> Option<(&NodeId, &IfaceId)> {
        if self.a.0 == *node && self.a.1 == *iface {
            Some((&self.b.0, &self.b.1))
        } else if self.b.0 == *node && self.b.1 == *iface {
            Some((&self.a.0, &self.a.1))
        } else {
            None
        }
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}<->{}:{}", self.a.0, self.a.1, self.b.0, self.b.1)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} <-> {}:{}", self.a.0, self.a.1, self.b.0, self.b.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_id_ordering_matches_numeric() {
        let low = RouterId(Ipv4Addr::new(1, 1, 1, 1));
        let high = RouterId(Ipv4Addr::new(2, 2, 2, 1));
        assert!(low < high);
        assert!(low.as_u32() < high.as_u32());
    }

    #[test]
    fn loopback_detection() {
        assert!(IfaceId::new("Loopback0").is_loopback());
        assert!(IfaceId::new("lo0").is_loopback());
        assert!(!IfaceId::new("Ethernet2").is_loopback());
    }

    #[test]
    fn link_id_is_order_insensitive() {
        let e1 = (NodeId::from("r1"), IfaceId::from("Ethernet1"));
        let e2 = (NodeId::from("r2"), IfaceId::from("Ethernet1"));
        assert_eq!(LinkId::new(e1.clone(), e2.clone()), LinkId::new(e2, e1));
    }

    #[test]
    fn link_peer_lookup() {
        let e1 = (NodeId::from("r1"), IfaceId::from("Ethernet1"));
        let e2 = (NodeId::from("r2"), IfaceId::from("Ethernet3"));
        let link = LinkId::new(e1, e2);
        let (peer, piface) = link
            .peer_of(&NodeId::from("r1"), &IfaceId::from("Ethernet1"))
            .unwrap();
        assert_eq!(peer, &NodeId::from("r2"));
        assert_eq!(piface, &IfaceId::from("Ethernet3"));
        assert!(link
            .peer_of(&NodeId::from("r1"), &IfaceId::from("Ethernet9"))
            .is_none());
        assert!(link.touches(&NodeId::from("r2")));
        assert!(!link.touches(&NodeId::from("r3")));
    }
}
