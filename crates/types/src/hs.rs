//! Header-space algebra.
//!
//! The verification engine reasons about *sets of packets* rather than
//! individual probes, which is what makes its search exhaustive (the paper's
//! Differential Reachability query "exhaustively compares network paths for
//! all possible packets"). [`IpSet`] is an exact set of IPv4 addresses
//! represented as sorted, disjoint, inclusive ranges; [`PacketClass`] is a
//! rectangle over (dst, src) address space.
//!
//! Since every FIB in this system forwards on destination address only, the
//! per-hop transformation partitions the *destination* dimension; the source
//! dimension is carried through for query filtering.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::addr::Prefix;

/// An inclusive range of IPv4 addresses (as raw `u32`s).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpRange {
    pub lo: u32,
    pub hi: u32,
}

impl fmt::Debug for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}-{}]",
            Ipv4Addr::from(self.lo),
            Ipv4Addr::from(self.hi)
        )
    }
}

/// An exact set of IPv4 addresses: sorted, disjoint, non-adjacent inclusive
/// ranges. The canonical form makes equality structural.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct IpSet {
    ranges: Vec<IpRange>,
}

impl IpSet {
    /// The empty set.
    pub fn empty() -> IpSet {
        IpSet { ranges: Vec::new() }
    }

    /// The full IPv4 space.
    pub fn full() -> IpSet {
        IpSet {
            ranges: vec![IpRange {
                lo: 0,
                hi: u32::MAX,
            }],
        }
    }

    /// A single address.
    pub fn single(ip: Ipv4Addr) -> IpSet {
        let v = u32::from(ip);
        IpSet {
            ranges: vec![IpRange { lo: v, hi: v }],
        }
    }

    /// All addresses covered by `prefix`.
    pub fn from_prefix(prefix: &Prefix) -> IpSet {
        IpSet {
            ranges: vec![IpRange {
                lo: prefix.first(),
                hi: prefix.last(),
            }],
        }
    }

    /// Builds from arbitrary (possibly overlapping, unsorted) ranges.
    pub fn from_ranges(ranges: impl IntoIterator<Item = (u32, u32)>) -> IpSet {
        let mut rs: Vec<IpRange> = ranges
            .into_iter()
            .filter(|(lo, hi)| lo <= hi)
            .map(|(lo, hi)| IpRange { lo, hi })
            .collect();
        rs.sort();
        let mut out: Vec<IpRange> = Vec::with_capacity(rs.len());
        for r in rs {
            match out.last_mut() {
                // Merge overlapping or adjacent ranges into canonical form.
                Some(last) if r.lo <= last.hi.saturating_add(1) => {
                    last.hi = last.hi.max(r.hi);
                }
                _ => out.push(r),
            }
        }
        IpSet { ranges: out }
    }

    /// The canonical ranges (sorted, disjoint, non-adjacent).
    pub fn ranges(&self) -> &[IpRange] {
        &self.ranges
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of addresses in the set (fits in u64: ≤ 2^32).
    pub fn count(&self) -> u64 {
        self.ranges
            .iter()
            .map(|r| (r.hi as u64) - (r.lo as u64) + 1)
            .sum()
    }

    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        let v = u32::from(ip);
        self.ranges
            .binary_search_by(|r| {
                if v < r.lo {
                    std::cmp::Ordering::Greater
                } else if v > r.hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &IpSet) -> IpSet {
        IpSet::from_ranges(
            self.ranges
                .iter()
                .chain(other.ranges.iter())
                .map(|r| (r.lo, r.hi)),
        )
    }

    /// Set intersection (linear two-pointer merge).
    pub fn intersect(&self, other: &IpSet) -> IpSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = self.ranges[i];
            let b = other.ranges[j];
            let lo = a.lo.max(b.lo);
            let hi = a.hi.min(b.hi);
            if lo <= hi {
                out.push(IpRange { lo, hi });
            }
            if a.hi < b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Output of the merge is already sorted/disjoint, but ranges split at
        // adjacency boundaries must be re-merged for canonical form.
        IpSet::from_ranges(out.into_iter().map(|r| (r.lo, r.hi)))
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IpSet) -> IpSet {
        let mut out: Vec<IpRange> = Vec::new();
        let mut j = 0;
        for &a in &self.ranges {
            let mut lo = a.lo;
            // Skip subtrahend ranges entirely below this range.
            while j < other.ranges.len() && other.ranges[j].hi < a.lo {
                j += 1;
            }
            let mut k = j;
            let mut done = false;
            while k < other.ranges.len() && other.ranges[k].lo <= a.hi {
                let b = other.ranges[k];
                if b.lo > lo {
                    out.push(IpRange { lo, hi: b.lo - 1 });
                }
                if b.hi >= a.hi {
                    done = true;
                    break;
                }
                lo = b.hi + 1;
                k += 1;
            }
            if !done && lo <= a.hi {
                out.push(IpRange { lo, hi: a.hi });
            }
        }
        IpSet::from_ranges(out.into_iter().map(|r| (r.lo, r.hi)))
    }

    /// Set complement within the full IPv4 space.
    pub fn complement(&self) -> IpSet {
        IpSet::full().subtract(self)
    }

    /// A representative address from the set (the lowest), if nonempty.
    pub fn sample(&self) -> Option<Ipv4Addr> {
        self.ranges.first().map(|r| Ipv4Addr::from(r.lo))
    }

    /// Decomposes the set into a minimal list of CIDR prefixes. Useful for
    /// reporting ("these destinations lost reachability") in config-speak.
    pub fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        for r in &self.ranges {
            let mut lo = r.lo as u64;
            let hi = r.hi as u64;
            while lo <= hi {
                // Largest power-of-two block aligned at `lo` that fits.
                let align = if lo == 0 { 33 } else { lo.trailing_zeros() };
                let mut size = 1u64 << align.min(32);
                while lo + size - 1 > hi {
                    size >>= 1;
                }
                let len = 32 - size.trailing_zeros() as u8;
                out.push(Prefix::from_bits(lo as u32, len));
                lo += size;
            }
        }
        out
    }
}

impl fmt::Debug for IpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.len() == 1 && self.ranges[0].lo == 0 && self.ranges[0].hi == u32::MAX {
            return write!(f, "IpSet(*)");
        }
        write!(f, "IpSet{:?}", self.ranges)
    }
}

impl fmt::Display for IpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let prefixes = self.to_prefixes();
        // Keep reports readable: show at most 4 prefixes.
        let shown: Vec<String> = prefixes.iter().take(4).map(|p| p.to_string()).collect();
        write!(f, "{}", shown.join(", "))?;
        if prefixes.len() > 4 {
            write!(f, ", … ({} prefixes)", prefixes.len())?;
        }
        Ok(())
    }
}

impl From<Prefix> for IpSet {
    fn from(p: Prefix) -> Self {
        IpSet::from_prefix(&p)
    }
}

/// A rectangle of packets: a destination set × source set.
///
/// Forwarding decisions partition `dst`; `src` is constrained only by query
/// scoping (e.g. "packets entering at R5's loopback").
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PacketClass {
    pub dst: IpSet,
    pub src: IpSet,
}

impl PacketClass {
    /// All packets.
    pub fn full() -> PacketClass {
        PacketClass {
            dst: IpSet::full(),
            src: IpSet::full(),
        }
    }

    /// All packets toward destinations in `dst`, any source.
    pub fn to_dst(dst: impl Into<IpSet>) -> PacketClass {
        PacketClass {
            dst: dst.into(),
            src: IpSet::full(),
        }
    }

    /// Packets from `src` to `dst`.
    pub fn flow(src: impl Into<IpSet>, dst: impl Into<IpSet>) -> PacketClass {
        PacketClass {
            src: src.into(),
            dst: dst.into(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.dst.is_empty() || self.src.is_empty()
    }

    /// Number of (src, dst) packet combinations in the class.
    pub fn count(&self) -> u128 {
        self.dst.count() as u128 * self.src.count() as u128
    }

    pub fn intersect(&self, other: &PacketClass) -> PacketClass {
        PacketClass {
            dst: self.dst.intersect(&other.dst),
            src: self.src.intersect(&other.src),
        }
    }

    /// Restricts the class to destinations in `dst`.
    pub fn with_dst(&self, dst: &IpSet) -> PacketClass {
        PacketClass {
            dst: self.dst.intersect(dst),
            src: self.src.clone(),
        }
    }

    /// Removes destinations in `dst` from the class.
    pub fn without_dst(&self, dst: &IpSet) -> PacketClass {
        PacketClass {
            dst: self.dst.subtract(dst),
            src: self.src.clone(),
        }
    }

    /// A representative (src, dst) pair, if the class is nonempty.
    pub fn sample(&self) -> Option<(Ipv4Addr, Ipv4Addr)> {
        Some((self.src.sample()?, self.dst.sample()?))
    }
}

impl fmt::Display for PacketClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src={} dst={}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u32, u32)]) -> IpSet {
        IpSet::from_ranges(ranges.iter().copied())
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalization_merges_overlaps_and_adjacency() {
        let s = set(&[(10, 20), (15, 30), (31, 40), (50, 60)]);
        assert_eq!(
            s.ranges(),
            &[IpRange { lo: 10, hi: 40 }, IpRange { lo: 50, hi: 60 }]
        );
        assert_eq!(s.count(), 31 + 11);
    }

    #[test]
    fn empty_and_full() {
        assert!(IpSet::empty().is_empty());
        assert_eq!(IpSet::full().count(), 1u64 << 32);
        assert_eq!(IpSet::full().complement(), IpSet::empty());
        assert_eq!(IpSet::empty().complement(), IpSet::full());
    }

    #[test]
    fn union_intersect_subtract_basics() {
        let a = set(&[(0, 100)]);
        let b = set(&[(50, 150)]);
        assert_eq!(a.union(&b), set(&[(0, 150)]));
        assert_eq!(a.intersect(&b), set(&[(50, 100)]));
        assert_eq!(a.subtract(&b), set(&[(0, 49)]));
        assert_eq!(b.subtract(&a), set(&[(101, 150)]));
    }

    #[test]
    fn subtract_punches_holes() {
        let a = set(&[(0, 1000)]);
        let b = set(&[(100, 199), (300, 399)]);
        assert_eq!(a.subtract(&b), set(&[(0, 99), (200, 299), (400, 1000)]));
    }

    #[test]
    fn subtract_across_multiple_minuend_ranges() {
        let a = set(&[(0, 10), (20, 30), (40, 50)]);
        let b = set(&[(5, 45)]);
        assert_eq!(a.subtract(&b), set(&[(0, 4), (46, 50)]));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = set(&[(0, 10)]);
        let b = set(&[(20, 30)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = set(&[(10, 20), (100, 200), (1000, 1000)]);
        assert!(s.contains(Ipv4Addr::from(15u32)));
        assert!(s.contains(Ipv4Addr::from(1000u32)));
        assert!(!s.contains(Ipv4Addr::from(21u32)));
        assert!(!s.contains(Ipv4Addr::from(999u32)));
    }

    #[test]
    fn from_prefix_and_back() {
        let s = IpSet::from_prefix(&p("10.0.0.0/8"));
        assert_eq!(s.count(), 1 << 24);
        assert_eq!(s.to_prefixes(), vec![p("10.0.0.0/8")]);
    }

    #[test]
    fn to_prefixes_decomposes_unaligned_range() {
        // 1..=6 = 1/32, 2/31, 4/31, 6/32
        let s = set(&[(1, 6)]);
        let lens: Vec<u8> = s.to_prefixes().iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![32, 31, 31, 32]);
        // Round trip: union of resulting prefixes is the original set.
        let mut acc = IpSet::empty();
        for pre in s.to_prefixes() {
            acc = acc.union(&IpSet::from_prefix(&pre));
        }
        assert_eq!(acc, s);
    }

    #[test]
    fn to_prefixes_handles_full_space() {
        assert_eq!(IpSet::full().to_prefixes(), vec![p("0.0.0.0/0")]);
    }

    #[test]
    fn boundary_at_u32_max() {
        let s = set(&[(u32::MAX - 1, u32::MAX)]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.complement().count(), (1u64 << 32) - 2);
        assert!(s.contains(Ipv4Addr::from(u32::MAX)));
    }

    #[test]
    fn packet_class_algebra() {
        let cls = PacketClass::flow(p("1.0.0.0/8"), p("2.0.0.0/8"));
        assert!(!cls.is_empty());
        let narrowed = cls.with_dst(&IpSet::from_prefix(&p("2.5.0.0/16")));
        assert_eq!(narrowed.dst.count(), 1 << 16);
        let emptied = cls.with_dst(&IpSet::from_prefix(&p("3.0.0.0/8")));
        assert!(emptied.is_empty());
        let holed = cls.without_dst(&IpSet::from_prefix(&p("2.5.0.0/16")));
        assert_eq!(holed.dst.count(), (1u64 << 24) - (1u64 << 16));
    }

    #[test]
    fn packet_class_sample_and_count() {
        let cls = PacketClass::flow(p("1.2.3.4/32"), p("9.9.9.0/30"));
        assert_eq!(cls.count(), 4);
        let (s, d) = cls.sample().unwrap();
        assert_eq!(s, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(d, Ipv4Addr::new(9, 9, 9, 0));
        assert!(PacketClass::flow(IpSet::empty(), IpSet::full()).is_empty());
    }
}
