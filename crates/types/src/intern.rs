//! Deterministic string interning for hot-path identifier keys.
//!
//! The emulation engine dispatches hundreds of thousands of events per run;
//! keying event state on `String`-backed [`NodeId`]/[`IfaceId`] means a heap
//! clone and a byte-wise compare on every hop. An [`Interner`] is built once
//! from the topology and hands out `Copy` u32-backed [`NodeRef`]/[`IfaceRef`]
//! keys instead: O(1) copies, integer compares, and dense indices that let
//! per-node state live in plain `Vec`s.
//!
//! Determinism: refs are assigned in insertion order and nothing else, so a
//! caller that interns names in a deterministic order (the engine interns
//! them in sorted order) gets identical numbering on every run — interned
//! keys are as replay-safe as the strings they stand for.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{IfaceId, NodeId};

/// A `Copy` handle for an interned [`NodeId`]. Doubles as a dense index:
/// `NodeRef(i)` is the i-th node interned.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef(pub u32);

impl NodeRef {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n#{}", self.0)
    }
}

/// A `Copy` handle for an interned [`IfaceId`]. Dense like [`NodeRef`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceRef(pub u32);

impl IfaceRef {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IfaceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i#{}", self.0)
    }
}

/// A two-namespace (node names, interface names) intern table.
///
/// Built once, then read-only on the hot path: `resolve_*` maps a name to
/// its ref, `node`/`iface` maps a ref back to the name without allocating.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    nodes: Vec<NodeId>,
    node_index: BTreeMap<NodeId, NodeRef>,
    ifaces: Vec<IfaceId>,
    iface_index: BTreeMap<IfaceId, IfaceRef>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a node name, returning its existing ref if already present.
    pub fn intern_node(&mut self, name: &NodeId) -> NodeRef {
        if let Some(r) = self.node_index.get(name) {
            return *r;
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(name.clone());
        self.node_index.insert(name.clone(), r);
        r
    }

    /// Interns an interface name, returning its existing ref if present.
    pub fn intern_iface(&mut self, name: &IfaceId) -> IfaceRef {
        if let Some(r) = self.iface_index.get(name) {
            return *r;
        }
        let r = IfaceRef(self.ifaces.len() as u32);
        self.ifaces.push(name.clone());
        self.iface_index.insert(name.clone(), r);
        r
    }

    /// The ref for a node name, if interned.
    pub fn resolve_node(&self, name: &NodeId) -> Option<NodeRef> {
        self.node_index.get(name).copied()
    }

    /// The ref for an interface name, if interned.
    pub fn resolve_iface(&self, name: &IfaceId) -> Option<IfaceRef> {
        self.iface_index.get(name).copied()
    }

    /// The name behind a node ref. Refs are only minted by this table, so a
    /// miss means the caller mixed refs from another interner; returning the
    /// option (rather than indexing) keeps that a handleable error.
    pub fn node(&self, r: NodeRef) -> Option<&NodeId> {
        self.nodes.get(r.index())
    }

    /// The name behind an interface ref.
    pub fn iface(&self, r: IfaceRef) -> Option<&IfaceId> {
        self.ifaces.get(r.index())
    }

    /// Number of interned nodes; node refs are dense in `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of interned interfaces; dense like nodes.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// All node refs in numbering order.
    pub fn node_refs(&self) -> impl Iterator<Item = NodeRef> {
        (0..self.nodes.len() as u32).map(NodeRef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = Interner::new();
        let a = t.intern_node(&"r1".into());
        let b = t.intern_node(&"r2".into());
        assert_eq!(a, NodeRef(0));
        assert_eq!(b, NodeRef(1));
        assert_eq!(t.intern_node(&"r1".into()), a);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.node(a), Some(&"r1".into()));
        assert_eq!(t.resolve_node(&"r2".into()), Some(b));
        assert_eq!(t.resolve_node(&"r9".into()), None);
    }

    #[test]
    fn node_and_iface_namespaces_are_independent() {
        let mut t = Interner::new();
        t.intern_node(&"x".into());
        let i = t.intern_iface(&IfaceId::from("Ethernet1"));
        assert_eq!(i, IfaceRef(0));
        assert_eq!(t.iface(i), Some(&IfaceId::from("Ethernet1")));
        assert_eq!(t.iface_count(), 1);
    }

    #[test]
    fn numbering_follows_insertion_order_only() {
        // Two tables fed the same sequence agree ref-for-ref; a different
        // order yields different numbering — determinism is the caller's
        // insertion order, which the engine derives from sorted names.
        let names: Vec<NodeId> = vec!["b".into(), "a".into(), "c".into()];
        let mut t1 = Interner::new();
        let mut t2 = Interner::new();
        for n in &names {
            assert_eq!(t1.intern_node(n), t2.intern_node(n));
        }
    }

    #[test]
    fn foreign_refs_miss_instead_of_panicking() {
        let t = Interner::new();
        assert_eq!(t.node(NodeRef(3)), None);
        assert_eq!(t.iface(IfaceRef(0)), None);
    }
}
