//! Simulated time.
//!
//! All control-plane emulation runs on a virtual clock owned by the
//! discrete-event engine; nothing in the workspace reads the wall clock.
//! Resolution is one millisecond, which is finer than any protocol timer we
//! model (hello intervals, keepalives, boot times).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms)
    }

    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000)
    }

    pub const fn from_mins(m: u64) -> SimDuration {
        SimDuration(m * 60_000)
    }

    pub fn as_millis(&self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub fn as_mins_f64(&self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Saturating multiplication by a scalar.
    pub fn saturating_mul(&self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{:.1}min", self.as_mins_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// An instant on the simulated clock: milliseconds since emulation start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn as_millis(&self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(3);
        assert_eq!(t.as_millis(), 3_000);
        assert_eq!(t.since(SimTime(1_000)), SimDuration(2_000));
        assert_eq!(t.since(SimTime(9_000)), SimDuration::ZERO);
        assert_eq!(t - SimTime(500), SimDuration(2_500));
    }

    #[test]
    fn constructors() {
        assert_eq!(SimDuration::from_mins(3).as_millis(), 180_000);
        assert_eq!(
            SimDuration::from_secs(2) + SimDuration(5),
            SimDuration(2_005)
        );
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration(900).to_string(), "900ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.0min");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(1) < SimDuration(2));
    }
}
