//! Shared vocabulary types for the model-free verification stack.
//!
//! This crate is dependency-light and is used by every other crate in the
//! workspace. It provides:
//!
//! - IPv4 prefixes and interface addresses ([`Prefix`], [`IfaceAddr`])
//! - identifiers ([`RouterId`], [`AsNum`], [`NodeId`], [`IfaceId`], [`LinkId`])
//!   and deterministic interned `Copy` handles for the string-backed ones
//!   ([`intern::Interner`], [`intern::NodeRef`], [`intern::IfaceRef`])
//! - routing attribute types shared across protocol implementations
//!   ([`AsPath`], [`Community`], [`Origin`], [`AdminDistance`], …)
//! - a longest-prefix-match trie ([`trie::PrefixTrie`])
//! - a header-space algebra over IPv4 ranges ([`hs::IpSet`],
//!   [`hs::PacketClass`]) used by the exhaustive verification engine
//! - simulated-time primitives ([`time::SimTime`], [`time::SimDuration`])
//! - extraction provenance shared by the management plane and the verifier
//!   ([`status::ExtractionStatus`])

pub mod addr;
pub mod attrs;
pub mod hs;
pub mod ids;
pub mod intern;
pub mod status;
pub mod time;
pub mod trie;

pub use addr::{IfaceAddr, Prefix, PrefixParseError};
pub use attrs::{AdminDistance, AsPath, AsPathSegment, Community, Origin, RouteProtocol};
pub use hs::{IpSet, PacketClass};
pub use ids::{AsNum, IfaceId, LinkId, NodeId, RouterId};
pub use intern::{IfaceRef, Interner, NodeRef};
pub use status::ExtractionStatus;
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;
