//! Extraction provenance: how trustworthy is the state we pulled from a
//! device's management plane?
//!
//! The model-free pipeline extracts per-device AFTs over gNMI. In a real
//! deployment that RPC path fails in mundane ways — timeouts, transient
//! errors, a telemetry cache serving old data — and the verdict of a
//! verification run must say which devices' state it actually saw. This
//! lives in `mfv-types` so the management plane (producer), snapshot
//! pipeline (carrier), and verifier (consumer) share one vocabulary without
//! a dependency cycle.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Per-node outcome of AFT extraction.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ExtractionStatus {
    /// The device answered with current state.
    Fresh,
    /// The device answered from a telemetry cache this much older than the
    /// live dataplane; the state may trail it.
    Stale(SimDuration),
    /// Extraction failed past its retry budget (reason attached); the
    /// snapshot has no state for this node.
    Missing(String),
}

impl ExtractionStatus {
    /// Did extraction produce *some* state (fresh or stale)?
    pub fn is_covered(&self) -> bool {
        !matches!(self, ExtractionStatus::Missing(_))
    }

    pub fn is_fresh(&self) -> bool {
        matches!(self, ExtractionStatus::Fresh)
    }
}

impl std::fmt::Display for ExtractionStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractionStatus::Fresh => write!(f, "fresh"),
            ExtractionStatus::Stale(age) => write!(f, "stale ({age} old)"),
            ExtractionStatus::Missing(reason) => write!(f, "missing ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_predicate() {
        assert!(ExtractionStatus::Fresh.is_covered());
        assert!(ExtractionStatus::Stale(SimDuration::from_secs(30)).is_covered());
        assert!(!ExtractionStatus::Missing("deadline".into()).is_covered());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ExtractionStatus::Fresh.to_string(), "fresh");
        assert_eq!(
            ExtractionStatus::Stale(SimDuration::from_secs(5)).to_string(),
            "stale (5.000s old)"
        );
    }
}
