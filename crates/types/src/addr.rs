//! IPv4 prefixes and interface addresses.
//!
//! All addressing in the workspace is IPv4: the paper's evaluation topologies
//! are IPv4-only (`address-family ipv4 unicast`), and a single family keeps
//! the header-space algebra exact.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Error produced when parsing a [`Prefix`] or [`IfaceAddr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

/// An IPv4 CIDR prefix, stored canonically (host bits zeroed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network address with host bits cleared.
    addr: u32,
    /// Prefix length, 0..=32.
    len: u8,
}

impl Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    /// Builds a prefix from an address and length, zeroing host bits.
    ///
    /// Lengths above 32 are clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        let len = len.min(32);
        let bits = u32::from(addr) & Self::mask_of(len);
        Prefix { addr: bits, len }
    }

    /// Builds a host prefix (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Prefix {
        Prefix::new(addr, 32)
    }

    /// Builds a prefix from raw `u32` bits and a length, zeroing host bits.
    pub fn from_bits(bits: u32, len: u8) -> Prefix {
        let len = len.min(32);
        Prefix {
            addr: bits & Self::mask_of(len),
            len,
        }
    }

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Network address of the prefix.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Network address as raw bits.
    pub fn network_bits(&self) -> u32 {
        self.addr
    }

    /// Prefix length. (`is_empty` is meaningless for a prefix; a /0 still
    /// matches everything.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask as raw bits (e.g. `/24` → `0xffff_ff00`).
    pub fn mask_bits(&self) -> u32 {
        Self::mask_of(self.len)
    }

    /// First address covered by the prefix.
    pub fn first(&self) -> u32 {
        self.addr
    }

    /// Last address covered by the prefix.
    pub fn last(&self) -> u32 {
        self.addr | !Self::mask_of(self.len)
    }

    /// Does this prefix cover `ip`?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & self.mask_bits()) == self.addr
    }

    /// Does this prefix cover every address of `other`?
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.addr & self.mask_bits()) == self.addr
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The two halves of this prefix, or `None` for a `/32`.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Prefix {
            addr: self.addr | (1 << (31 - self.len as u32)),
            len: self.len + 1,
        };
        Some((left, right))
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl Serialize for Prefix {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for Prefix {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = String::from_value(v)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

/// An address assigned to an interface: the full host address *and* the
/// subnet length (`100.64.0.1/31`), as written in device configs.
///
/// Unlike [`Prefix`], host bits are preserved — `IfaceAddr` knows which
/// address on the subnet is ours.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IfaceAddr {
    /// The interface's own address (host bits preserved).
    pub addr: Ipv4Addr,
    /// Subnet prefix length.
    pub len: u8,
}

impl IfaceAddr {
    /// Builds an interface address, clamping the length to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> IfaceAddr {
        IfaceAddr {
            addr,
            len: len.min(32),
        }
    }

    /// The connected subnet as a canonical [`Prefix`].
    pub fn subnet(&self) -> Prefix {
        Prefix::new(self.addr, self.len)
    }

    /// Is `other` on the same subnet (a valid directly-connected neighbor)?
    pub fn same_subnet(&self, other: &IfaceAddr) -> bool {
        self.len == other.len && self.subnet() == other.subnet()
    }
}

impl fmt::Debug for IfaceAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for IfaceAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for IfaceAddr {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError(s.to_string()));
        }
        Ok(IfaceAddr { addr, len })
    }
}

impl Serialize for IfaceAddr {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for IfaceAddr {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = String::from_value(v)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let pre = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(pre.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "100.64.0.0/31", "2.2.2.1/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let net = p("192.168.0.0/16");
        assert!(net.contains(Ipv4Addr::new(192, 168, 44, 7)));
        assert!(!net.contains(Ipv4Addr::new(192, 169, 0, 1)));
        assert!(net.covers(&p("192.168.5.0/24")));
        assert!(!p("192.168.5.0/24").covers(&net));
        assert!(net.covers(&net));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = p("10.0.0.0/8");
        let b = p("10.20.0.0/16");
        let c = p("11.0.0.0/8");
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    fn first_last_bounds() {
        let net = p("10.0.0.0/30");
        assert_eq!(net.first(), u32::from(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(net.last(), u32::from(Ipv4Addr::new(10, 0, 0, 3)));
        let def = Prefix::DEFAULT;
        assert_eq!(def.first(), 0);
        assert_eq!(def.last(), u32::MAX);
    }

    #[test]
    fn children_split_evenly() {
        let net = p("10.0.0.0/8");
        let (l, r) = net.children().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert!(p("1.2.3.4/32").children().is_none());
    }

    #[test]
    fn iface_addr_subnet_and_neighbor() {
        let a: IfaceAddr = "100.64.0.1/31".parse().unwrap();
        let b: IfaceAddr = "100.64.0.0/31".parse().unwrap();
        assert_eq!(a.subnet(), p("100.64.0.0/31"));
        assert!(a.same_subnet(&b));
        let c: IfaceAddr = "100.64.0.2/31".parse().unwrap();
        assert!(!a.same_subnet(&c));
    }

    #[test]
    fn iface_addr_preserves_host_bits() {
        let a: IfaceAddr = "10.1.2.3/24".parse().unwrap();
        assert_eq!(a.to_string(), "10.1.2.3/24");
        assert_eq!(a.subnet().to_string(), "10.1.2.0/24");
    }

    #[test]
    fn serde_roundtrip() {
        let a = p("10.12.0.0/14");
        let js = serde_json::to_string(&a).unwrap();
        assert_eq!(js, "\"10.12.0.0/14\"");
        let back: Prefix = serde_json::from_str(&js).unwrap();
        assert_eq!(a, back);
    }
}
