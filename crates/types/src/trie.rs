//! A binary longest-prefix-match trie keyed by [`Prefix`].
//!
//! Used by every FIB in the workspace: the emulated routers, the model-based
//! baseline's computed dataplane, and the verification engine's forwarding
//! graph all resolve lookups through this structure.

use std::net::Ipv4Addr;

use crate::addr::Prefix;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    /// children[0] = next bit 0, children[1] = next bit 1.
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn empty() -> Node<V> {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_empty(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A map from [`Prefix`] to `V` supporting exact operations and
/// longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

fn bit_at(addr: u32, index: u8) -> usize {
    ((addr >> (31 - index as u32)) & 1) as usize
}

impl<V> PrefixTrie<V> {
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie {
            root: Node::empty(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit_at(prefix.network_bits(), i);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::empty()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value at exactly `prefix`, pruning empty branches.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        fn rec<V>(node: &mut Node<V>, bits: u32, depth: u8, len: u8) -> Option<V> {
            if depth == len {
                return node.value.take();
            }
            let b = bit_at(bits, depth);
            let child = node.children[b].as_mut()?;
            let out = rec(child, bits, depth + 1, len);
            if child.is_empty() {
                node.children[b] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix.network_bits(), 0, prefix.len());
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit_at(prefix.network_bits(), i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit_at(prefix.network_bits(), i);
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Longest-prefix-match: the most specific stored prefix covering `ip`.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(Prefix, &V)> {
        let bits = u32::from(ip);
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = bit_at(bits, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::from_bits(bits, len), v))
    }

    /// All stored prefixes covering `ip`, from least to most specific.
    pub fn matches(&self, ip: Ipv4Addr) -> Vec<(Prefix, &V)> {
        let bits = u32::from(ip);
        let mut out = Vec::new();
        let mut node = &self.root;
        if let Some(v) = node.value.as_ref() {
            out.push((Prefix::from_bits(bits, 0), v));
        }
        for i in 0..32u8 {
            let b = bit_at(bits, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        out.push((Prefix::from_bits(bits, i + 1), v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Iterates all `(prefix, value)` pairs in trie (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, V>(node: &'a Node<V>, bits: u32, depth: u8, out: &mut Vec<(Prefix, &'a V)>) {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::from_bits(bits, depth), v));
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, bits, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, bits | (1 << (31 - depth as u32)), depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    /// All stored prefixes (in trie order).
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.iter().map(|(p, _)| p).collect()
    }

    /// The topmost stored strict descendants of `prefix`: every stored
    /// prefix more specific than `prefix` with no other stored prefix
    /// between itself and `prefix`. Subtracting exactly these from
    /// `prefix`'s address set yields the addresses for which `prefix` is
    /// the longest match — without scanning unrelated prefixes.
    pub fn max_descendants(&self, prefix: &Prefix) -> Vec<Prefix> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit_at(prefix.network_bits(), i);
            match node.children[b].as_deref() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        fn walk<V>(node: &Node<V>, bits: u32, depth: u8, out: &mut Vec<Prefix>) {
            if node.value.is_some() {
                // Prune: anything deeper is shadowed by this descendant.
                out.push(Prefix::from_bits(bits, depth));
                return;
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, bits, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, bits | (1 << (31 - depth as u32)), depth + 1, out);
            }
        }
        let mut out = Vec::new();
        let base = prefix.network_bits();
        let depth = prefix.len();
        if let Some(c) = node.children[0].as_deref() {
            walk(c, base, depth + 1, &mut out);
        }
        if let Some(c) = node.children[1].as_deref() {
            walk(c, base | (1 << (31 - depth as u32)), depth + 1, &mut out);
        }
        out
    }
}

impl<V: PartialEq> PartialEq for PrefixTrie<V> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some((pa, va)), Some((pb, vb))) => {
                    if pa != pb || va != vb {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
}

impl<V: PartialEq> Eq for PrefixTrie<V> {}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<T: IntoIterator<Item = (Prefix, V)>>(iter: T) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn max_descendants_finds_topmost_holes() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.1.0.0/16"), ());
        t.insert(p("10.1.2.0/24"), ()); // shadowed by the /16 hole
        t.insert(p("10.128.0.0/9"), ());
        t.insert(p("11.0.0.0/8"), ()); // sibling, not a descendant
        let mut holes = t.max_descendants(&p("10.0.0.0/8"));
        holes.sort();
        assert_eq!(holes, vec![p("10.1.0.0/16"), p("10.128.0.0/9")]);
        // A leaf has no holes; an absent prefix has none either.
        assert!(t.max_descendants(&p("10.1.2.0/24")).is_empty());
        assert!(t.max_descendants(&p("192.168.0.0/16")).is_empty());
        // Descendants of an unstored midpoint are still found.
        assert_eq!(t.max_descendants(&p("10.1.0.0/12")), vec![p("10.1.0.0/16")]);
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);

        let (pre, v) = t.lookup(ip("10.1.2.3")).unwrap();
        assert_eq!((pre, *v), (p("10.1.2.0/24"), 24));
        let (pre, v) = t.lookup(ip("10.1.9.9")).unwrap();
        assert_eq!((pre, *v), (p("10.1.0.0/16"), 16));
        let (pre, v) = t.lookup(ip("10.200.0.1")).unwrap();
        assert_eq!((pre, *v), (p("10.0.0.0/8"), 8));
        let (pre, v) = t.lookup(ip("192.168.0.1")).unwrap();
        assert_eq!((pre, *v), (p("0.0.0.0/0"), 0));
    }

    #[test]
    fn lookup_without_default_can_miss() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.lookup(ip("11.0.0.1")).is_none());
    }

    #[test]
    fn matches_returns_all_covering() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("11.0.0.0/8"), 99);
        let m: Vec<u8> = t.matches(ip("10.1.2.3")).iter().map(|(_, v)| **v).collect();
        assert_eq!(m, vec![0, 8, 24]);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "0.0.0.0/0", "10.128.0.0/9", "192.168.1.0/24"];
        for s in prefixes {
            t.insert(p(s), s);
        }
        let seen: Vec<Prefix> = t.prefixes();
        assert_eq!(seen.len(), 4);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn remove_prunes_branches() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), ());
        t.remove(&p("10.1.2.0/24"));
        // Root must be back to pristine so lookups terminate immediately.
        assert!(t.root.is_empty());
    }

    #[test]
    fn host_route_wins_over_covering_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(p("2.2.2.0/24"), "net");
        t.insert(p("2.2.2.1/32"), "host");
        assert_eq!(t.lookup(ip("2.2.2.1")).unwrap().1, &"host");
        assert_eq!(t.lookup(ip("2.2.2.2")).unwrap().1, &"net");
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: PrefixTrie<i32> = [(p("10.0.0.0/8"), 1), (p("20.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        let b: PrefixTrie<i32> = [(p("20.0.0.0/8"), 2), (p("10.0.0.0/8"), 1)]
            .into_iter()
            .collect();
        assert_eq!(a, b);
        let c: PrefixTrie<i32> = [(p("10.0.0.0/8"), 1)].into_iter().collect();
        assert_ne!(a, c);
    }
}
