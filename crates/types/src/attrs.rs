//! Routing attributes shared by the protocol engines, the model-based
//! baseline, and the verification layer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::AsNum;

/// BGP origin attribute. Ordering follows the decision process preference:
/// IGP < EGP < Incomplete (lower is better).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Origin {
    Igp,
    Egp,
    Incomplete,
}

impl Origin {
    /// Wire encoding per RFC 4271 §4.3.
    pub fn code(&self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    pub fn from_code(c: u8) -> Option<Origin> {
        match c {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Origin::Igp => "i",
            Origin::Egp => "e",
            Origin::Incomplete => "?",
        };
        f.write_str(s)
    }
}

/// A standard BGP community (`asn:value`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Community(pub u32);

impl Community {
    pub fn new(asn: u16, value: u16) -> Community {
        Community(((asn as u32) << 16) | value as u32)
    }

    pub fn asn(&self) -> u16 {
        (self.0 >> 16) as u16
    }

    pub fn value(&self) -> u16 {
        (self.0 & 0xffff) as u16
    }
}

impl fmt::Debug for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn(), self.value())
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn(), self.value())
    }
}

/// One segment of an AS path.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum AsPathSegment {
    /// Ordered sequence of ASes (counts full length toward path length).
    Sequence(Vec<AsNum>),
    /// Unordered set from aggregation (counts as length 1).
    Set(Vec<AsNum>),
}

/// A BGP AS path: an ordered list of segments.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default, Serialize, Deserialize)]
pub struct AsPath(pub Vec<AsPathSegment>);

impl AsPath {
    /// The empty path (locally-originated route).
    pub fn empty() -> AsPath {
        AsPath(Vec::new())
    }

    /// A path consisting of one sequence of the given ASes.
    pub fn sequence(asns: impl IntoIterator<Item = AsNum>) -> AsPath {
        AsPath(vec![AsPathSegment::Sequence(asns.into_iter().collect())])
    }

    /// Path length for the decision process: sequences count per-AS, sets
    /// count 1 (RFC 4271 §9.1.2.2).
    pub fn route_len(&self) -> usize {
        self.0
            .iter()
            .map(|seg| match seg {
                AsPathSegment::Sequence(s) => s.len(),
                AsPathSegment::Set(_) => 1,
            })
            .sum()
    }

    /// Does the path contain `asn` anywhere? Used for eBGP loop prevention.
    pub fn contains(&self, asn: AsNum) -> bool {
        self.0.iter().any(|seg| match seg {
            AsPathSegment::Sequence(s) | AsPathSegment::Set(s) => s.contains(&asn),
        })
    }

    /// Returns a new path with `asn` prepended, merging into a leading
    /// sequence segment when one exists.
    pub fn prepend(&self, asn: AsNum) -> AsPath {
        let mut segs = self.0.clone();
        match segs.first_mut() {
            Some(AsPathSegment::Sequence(s)) => s.insert(0, asn),
            _ => segs.insert(0, AsPathSegment::Sequence(vec![asn])),
        }
        AsPath(segs)
    }

    /// The neighboring (leftmost) AS on the path, if any.
    pub fn first_as(&self) -> Option<AsNum> {
        match self.0.first() {
            Some(AsPathSegment::Sequence(s)) => s.first().copied(),
            Some(AsPathSegment::Set(s)) => s.first().copied(),
            None => None,
        }
    }

    /// The originating (rightmost) AS on the path, if any.
    pub fn origin_as(&self) -> Option<AsNum> {
        match self.0.last() {
            Some(AsPathSegment::Sequence(s)) => s.last().copied(),
            Some(AsPathSegment::Set(s)) => s.last().copied(),
            None => None,
        }
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.0 {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsPathSegment::Sequence(s) => {
                    let parts: Vec<String> = s.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                AsPathSegment::Set(s) => {
                    let parts: Vec<String> = s.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// The protocol a RIB/FIB entry was learned from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum RouteProtocol {
    Connected,
    Static,
    EbgpLearned,
    IbgpLearned,
    Isis,
    /// Routes injected by the emulation harness on behalf of external peers.
    External,
    /// Label-switched-path derived entry (MPLS-TE), outside the Batfish
    /// model's coverage — part of experiment E2.
    MplsTe,
}

impl fmt::Display for RouteProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteProtocol::Connected => "connected",
            RouteProtocol::Static => "static",
            RouteProtocol::EbgpLearned => "ebgp",
            RouteProtocol::IbgpLearned => "ibgp",
            RouteProtocol::Isis => "isis",
            RouteProtocol::External => "external",
            RouteProtocol::MplsTe => "mpls-te",
        };
        f.write_str(s)
    }
}

/// Administrative distance: the cross-protocol preference used when multiple
/// protocols offer the same prefix. Lower wins.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct AdminDistance(pub u8);

impl AdminDistance {
    /// Default administrative distances as used by the EOS-like vendor.
    pub fn default_for(proto: RouteProtocol) -> AdminDistance {
        let d = match proto {
            RouteProtocol::Connected => 0,
            RouteProtocol::Static => 1,
            RouteProtocol::EbgpLearned => 20,
            RouteProtocol::Isis => 115,
            RouteProtocol::IbgpLearned => 200,
            RouteProtocol::External => 20,
            RouteProtocol::MplsTe => 2,
        };
        AdminDistance(d)
    }
}

impl fmt::Display for AdminDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_preference_order() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn origin_code_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn community_packing() {
        let c = Community::new(65001, 300);
        assert_eq!(c.asn(), 65001);
        assert_eq!(c.value(), 300);
        assert_eq!(c.to_string(), "65001:300");
    }

    #[test]
    fn as_path_length_counts_sets_once() {
        let path = AsPath(vec![
            AsPathSegment::Sequence(vec![AsNum(1), AsNum(2)]),
            AsPathSegment::Set(vec![AsNum(3), AsNum(4), AsNum(5)]),
        ]);
        assert_eq!(path.route_len(), 3);
    }

    #[test]
    fn as_path_prepend_merges_into_sequence() {
        let path = AsPath::sequence([AsNum(2), AsNum(3)]);
        let path = path.prepend(AsNum(1));
        assert_eq!(path, AsPath::sequence([AsNum(1), AsNum(2), AsNum(3)]));
        assert_eq!(path.route_len(), 3);
        assert_eq!(path.first_as(), Some(AsNum(1)));
        assert_eq!(path.origin_as(), Some(AsNum(3)));
    }

    #[test]
    fn as_path_prepend_onto_set_creates_new_segment() {
        let path = AsPath(vec![AsPathSegment::Set(vec![AsNum(9)])]);
        let path = path.prepend(AsNum(1));
        assert_eq!(path.route_len(), 2);
        assert_eq!(path.first_as(), Some(AsNum(1)));
    }

    #[test]
    fn as_path_loop_detection() {
        let path = AsPath::sequence([AsNum(10), AsNum(20)]);
        assert!(path.contains(AsNum(20)));
        assert!(!path.contains(AsNum(30)));
    }

    #[test]
    fn empty_path_properties() {
        let path = AsPath::empty();
        assert_eq!(path.route_len(), 0);
        assert_eq!(path.first_as(), None);
        assert_eq!(path.origin_as(), None);
        assert_eq!(path.to_string(), "");
    }

    #[test]
    fn admin_distance_defaults_ordered_sanely() {
        let conn = AdminDistance::default_for(RouteProtocol::Connected);
        let stat = AdminDistance::default_for(RouteProtocol::Static);
        let ebgp = AdminDistance::default_for(RouteProtocol::EbgpLearned);
        let isis = AdminDistance::default_for(RouteProtocol::Isis);
        let ibgp = AdminDistance::default_for(RouteProtocol::IbgpLearned);
        assert!(conn < stat && stat < ebgp && ebgp < isis && isis < ibgp);
    }

    #[test]
    fn as_path_display() {
        let path = AsPath(vec![
            AsPathSegment::Sequence(vec![AsNum(100), AsNum(200)]),
            AsPathSegment::Set(vec![AsNum(300)]),
        ]);
        assert_eq!(path.to_string(), "100 200 {300}");
    }
}
