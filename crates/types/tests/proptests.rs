//! Property-based tests for the core data structures: the LPM trie is checked
//! against a naive linear-scan oracle, and the header-space algebra against
//! textbook set identities.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use mfv_types::{IpSet, PacketClass, Prefix, PrefixTrie};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_bits(bits, len))
}

fn arb_ipset() -> impl Strategy<Value = IpSet> {
    proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8)
        .prop_map(|pairs| IpSet::from_ranges(pairs.into_iter().map(|(a, b)| (a.min(b), a.max(b)))))
}

/// Naive LPM oracle: scan all prefixes, keep the longest that covers `ip`.
fn linear_lpm(prefixes: &[(Prefix, usize)], ip: Ipv4Addr) -> Option<usize> {
    prefixes
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, v)| *v)
}

proptest! {
    #[test]
    fn trie_lpm_matches_linear_scan(
        entries in proptest::collection::vec(arb_prefix(), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        // Deduplicate: on duplicate prefix the trie keeps the last value, so
        // index by prefix to build an order-independent oracle.
        let mut tagged: Vec<(Prefix, usize)> = Vec::new();
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
            tagged.retain(|(q, _)| q != p);
            tagged.push((*p, i));
        }
        prop_assert_eq!(trie.len(), tagged.len());
        for probe in probes {
            let ip = Ipv4Addr::from(probe);
            let got = trie.lookup(ip).map(|(_, v)| *v);
            let want = linear_lpm(&tagged, ip);
            prop_assert_eq!(got, want, "probe {}", ip);
        }
    }

    #[test]
    fn trie_remove_restores_oracle(
        entries in proptest::collection::vec(arb_prefix(), 1..30),
        remove_mask in proptest::collection::vec(any::<bool>(), 1..30),
        probe in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        let mut kept: Vec<(Prefix, usize)> = Vec::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
            kept.retain(|(q, _)| q != p);
            kept.push((*p, i));
        }
        for (i, p) in entries.iter().enumerate() {
            if *remove_mask.get(i).unwrap_or(&false) {
                trie.remove(p);
                kept.retain(|(q, _)| q != p);
            }
        }
        let ip = Ipv4Addr::from(probe);
        prop_assert_eq!(trie.lookup(ip).map(|(_, v)| *v), linear_lpm(&kept, ip));
        prop_assert_eq!(trie.len(), kept.len());
    }

    #[test]
    fn ipset_partition_invariant(a in arb_ipset(), b in arb_ipset()) {
        // (a ∩ b) ∪ (a \ b) == a, and the two parts are disjoint.
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        prop_assert_eq!(inter.union(&diff), a.clone());
        prop_assert!(inter.intersect(&diff).is_empty());
        prop_assert_eq!(inter.count() + diff.count(), a.count());
    }

    #[test]
    fn ipset_de_morgan(a in arb_ipset(), b in arb_ipset()) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ipset_ops_commute(a in arb_ipset(), b in arb_ipset()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn ipset_subtract_then_disjoint(a in arb_ipset(), b in arb_ipset()) {
        let diff = a.subtract(&b);
        prop_assert!(diff.intersect(&b).is_empty());
        // Everything removed was in b.
        prop_assert_eq!(a.subtract(&diff), a.intersect(&b));
    }

    #[test]
    fn ipset_complement_involution(a in arb_ipset()) {
        prop_assert_eq!(a.complement().complement(), a.clone());
        prop_assert_eq!(a.count() + a.complement().count(), 1u64 << 32);
    }

    #[test]
    fn ipset_prefix_decomposition_roundtrip(a in arb_ipset()) {
        let mut acc = IpSet::empty();
        for p in a.to_prefixes() {
            acc = acc.union(&IpSet::from_prefix(&p));
        }
        prop_assert_eq!(acc, a);
    }

    #[test]
    fn ipset_membership_agrees_with_ops(a in arb_ipset(), b in arb_ipset(), probe in any::<u32>()) {
        let ip = Ipv4Addr::from(probe);
        let in_a = a.contains(ip);
        let in_b = b.contains(ip);
        prop_assert_eq!(a.union(&b).contains(ip), in_a || in_b);
        prop_assert_eq!(a.intersect(&b).contains(ip), in_a && in_b);
        prop_assert_eq!(a.subtract(&b).contains(ip), in_a && !in_b);
        prop_assert_eq!(a.complement().contains(ip), !in_a);
    }

    #[test]
    fn packet_class_intersect_counts(a in arb_ipset(), b in arb_ipset()) {
        let cls = PacketClass::flow(a.clone(), b.clone());
        prop_assert_eq!(cls.count(), a.count() as u128 * b.count() as u128);
        let inter = cls.intersect(&PacketClass::full());
        prop_assert_eq!(inter, cls);
    }

    #[test]
    fn prefix_cover_agrees_with_sets(a in arb_prefix(), b in arb_prefix()) {
        let sa = IpSet::from_prefix(&a);
        let sb = IpSet::from_prefix(&b);
        prop_assert_eq!(a.covers(&b), sb.subtract(&sa).is_empty());
        prop_assert_eq!(a.overlaps(&b), !sa.intersect(&sb).is_empty());
    }
}
