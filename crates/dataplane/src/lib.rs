//! The dataplane snapshot model.
//!
//! A [`Dataplane`] is the unit the verification engine consumes: per-node
//! forwarding state (FIBs) plus the physical adjacency needed to follow a
//! packet from hop to hop. Both backends produce it — the model-free
//! pipeline extracts it from emulated routers' AFTs, the model-based
//! baseline computes it from its control-plane model. Keeping the type
//! backend-agnostic is what lets the paper's prototype reuse Batfish's
//! verification engine unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use mfv_routing::rib::{Fib, FibEntry};
use mfv_types::{IfaceId, LinkId, NodeId, Prefix};

/// Forwarding state of one node.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NodeDataplane {
    /// FIB entries (serialised form of the node's AFT).
    pub entries: Vec<FibEntry>,
    /// Addresses owned by the node (packets to these are *accepted*).
    pub addresses: BTreeSet<Ipv4Addr>,
    /// Whether the node was up when the snapshot was taken. Crashed nodes
    /// contribute an empty FIB but still occupy their links.
    pub up: bool,
}

impl NodeDataplane {
    /// Rebuilds the LPM structure for lookups.
    pub fn fib(&self) -> Fib {
        let mut fib = Fib::new();
        for e in &self.entries {
            fib.insert(e.clone());
        }
        fib
    }

    /// Order-insensitive digest of this node's forwarding state. Two nodes
    /// with the same digest have identical FIBs, so any per-FIB derived
    /// structure (e.g. the verifier's effective match classes) can be
    /// shared between them — the key for node-level caching across variant
    /// dataplanes.
    pub fn fib_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut sorted: Vec<&FibEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| e.prefix);
        let mut h = DefaultHasher::new();
        for e in sorted {
            e.prefix.hash(&mut h);
            e.proto.hash(&mut h);
            e.next_hops.hash(&mut h);
        }
        h.finish()
    }
}

/// A complete network dataplane snapshot.
#[derive(Clone, Debug, Default)]
pub struct Dataplane {
    pub nodes: BTreeMap<NodeId, NodeDataplane>,
    /// Physical point-to-point adjacency, in insertion order.
    pub links: Vec<LinkId>,
    /// Dedup index over `links`; kept in sync by [`Dataplane::add_link`].
    link_index: BTreeSet<LinkId>,
}

impl Serialize for Dataplane {
    fn to_value(&self) -> serde::Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("nodes".to_string(), self.nodes.to_value());
        m.insert("links".to_string(), self.links.to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for Dataplane {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let nodes = Deserialize::from_value(v.get("nodes").unwrap_or(&serde::Value::Null))?;
        let links: Vec<LinkId> =
            Deserialize::from_value(v.get("links").unwrap_or(&serde::Value::Null))?;
        let link_index = links.iter().cloned().collect();
        Ok(Dataplane {
            nodes,
            links,
            link_index,
        })
    }
}

impl Dataplane {
    pub fn new() -> Dataplane {
        Dataplane::default()
    }

    /// Adds a node's forwarding state.
    pub fn add_node(&mut self, name: NodeId, fib: &Fib, addresses: BTreeSet<Ipv4Addr>, up: bool) {
        self.nodes.insert(
            name,
            NodeDataplane {
                entries: fib.entries().cloned().collect(),
                addresses,
                up,
            },
        );
    }

    /// Adds a link, ignoring duplicates. The set index makes this O(log n)
    /// instead of the former full-vector scan, while `links` preserves
    /// insertion order for deterministic iteration.
    pub fn add_link(&mut self, link: LinkId) {
        if self.link_index.insert(link.clone()) {
            self.links.push(link);
        }
    }

    /// The node+interface at the far end of `(node, iface)`, if linked.
    pub fn peer_of(&self, node: &NodeId, iface: &IfaceId) -> Option<(&NodeId, &IfaceId)> {
        self.links.iter().find_map(|l| l.peer_of(node, iface))
    }

    /// Which node owns address `ip`, if any.
    pub fn owner_of(&self, ip: Ipv4Addr) -> Option<&NodeId> {
        self.nodes
            .iter()
            .find(|(_, n)| n.addresses.contains(&ip))
            .map(|(name, _)| name)
    }

    /// Total FIB entries across the snapshot (a scale metric).
    pub fn total_entries(&self) -> usize {
        self.nodes.values().map(|n| n.entries.len()).sum()
    }

    /// All prefixes appearing in any FIB — the destination partition points
    /// for exhaustive verification.
    pub fn all_prefixes(&self) -> BTreeSet<Prefix> {
        self.nodes
            .values()
            .flat_map(|n| n.entries.iter().map(|e| e.prefix))
            .collect()
    }

    /// A stable content digest (used to compare converged dataplanes across
    /// emulation runs in the non-determinism ablation).
    pub fn digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for (name, node) in &self.nodes {
            name.hash(&mut h);
            node.up.hash(&mut h);
            for e in &node.entries {
                e.prefix.hash(&mut h);
                e.proto.hash(&mut h);
                e.next_hops.hash(&mut h);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_routing::rib::FibNextHop;
    use mfv_types::RouteProtocol;

    fn fib_with(prefix: &str, iface: &str, via: Option<&str>) -> Fib {
        let mut fib = Fib::new();
        fib.insert(FibEntry {
            prefix: prefix.parse().unwrap(),
            proto: RouteProtocol::Connected,
            next_hops: vec![FibNextHop {
                iface: iface.into(),
                via: via.map(|v| v.parse().unwrap()),
            }],
        });
        fib
    }

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn build_and_query_snapshot() {
        let mut dp = Dataplane::new();
        dp.add_node(
            "r1".into(),
            &fib_with("10.0.0.0/31", "eth0", None),
            [addr("10.0.0.0"), addr("2.2.2.1")].into(),
            true,
        );
        dp.add_node(
            "r2".into(),
            &fib_with("10.0.0.0/31", "eth0", None),
            [addr("10.0.0.1"), addr("2.2.2.2")].into(),
            true,
        );
        dp.add_link(LinkId::new(
            ("r1".into(), "eth0".into()),
            ("r2".into(), "eth0".into()),
        ));

        assert_eq!(dp.owner_of(addr("2.2.2.2")), Some(&NodeId::from("r2")));
        assert_eq!(dp.owner_of(addr("9.9.9.9")), None);
        let (peer, piface) = dp.peer_of(&"r1".into(), &"eth0".into()).unwrap();
        assert_eq!(peer, &NodeId::from("r2"));
        assert_eq!(piface, &IfaceId::from("eth0"));
        assert_eq!(dp.total_entries(), 2);
        assert_eq!(dp.all_prefixes().len(), 1);
    }

    #[test]
    fn digest_sensitive_to_fib_and_updown() {
        let mut a = Dataplane::new();
        a.add_node(
            "r1".into(),
            &fib_with("10.0.0.0/31", "eth0", None),
            BTreeSet::new(),
            true,
        );
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.nodes.get_mut(&NodeId::from("r1")).unwrap().up = false;
        assert_ne!(a.digest(), b.digest());
        let mut c = Dataplane::new();
        c.add_node(
            "r1".into(),
            &fib_with("10.0.0.0/30", "eth0", None),
            BTreeSet::new(),
            true,
        );
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn add_link_dedupes() {
        let mut dp = Dataplane::new();
        let l = LinkId::new(("a".into(), "e0".into()), ("b".into(), "e0".into()));
        dp.add_link(l.clone());
        dp.add_link(LinkId::new(
            ("b".into(), "e0".into()),
            ("a".into(), "e0".into()),
        ));
        assert_eq!(dp.links.len(), 1);
        let _ = l;
    }

    #[test]
    fn node_fib_roundtrip() {
        let fib = fib_with("192.168.0.0/24", "eth1", Some("10.0.0.1"));
        let mut dp = Dataplane::new();
        dp.add_node("r1".into(), &fib, BTreeSet::new(), true);
        let rebuilt = dp.nodes[&NodeId::from("r1")].fib();
        assert!(rebuilt.same_as(&fib));
    }

    #[test]
    fn serde_roundtrip() {
        let mut dp = Dataplane::new();
        dp.add_node(
            "r1".into(),
            &fib_with("10.0.0.0/8", "eth0", Some("1.1.1.1")),
            [addr("1.0.0.1")].into(),
            true,
        );
        dp.add_link(LinkId::new(
            ("r1".into(), "eth0".into()),
            ("r2".into(), "eth0".into()),
        ));
        let js = serde_json::to_string(&dp).unwrap();
        let back: Dataplane = serde_json::from_str(&js).unwrap();
        assert_eq!(back.digest(), dp.digest());
        assert_eq!(back.links, dp.links);
    }
}
